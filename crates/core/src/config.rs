//! Configuration of an ST-HOSVD run: SVD algorithm, mode ordering,
//! truncation criterion, and the tuning knobs of §4.2.

use tucker_dtensor::ReductionTree;
use tucker_linalg::randomized::RandomizedSvdConfig;
use tucker_linalg::tslq::TslqOptions;
use tucker_linalg::LinalgError;

/// Which SVD algorithm factors each unfolding (the paper's central choice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SvdMethod {
    /// TuckerMPI's Gram-SVD: eigendecomposition of `X_(n) X_(n)ᵀ` (§2.3).
    /// Half the flops of QR, but singular values below `‖A‖·√ε` are noise.
    Gram,
    /// The paper's QR-SVD: LQ of the unfolding, SVD of the triangle (§3.1).
    /// Twice the flops of Gram, accurate down to `‖A‖·ε`.
    Qr,
    /// Randomized range-finder SVD (Halko et al.) — the competitor the
    /// paper's conclusion points at for loose tolerances (§5). Requires
    /// fixed ranks ([`Truncation::Ranks`]). Available in both the
    /// sequential and the distributed driver; for a fixed seed the
    /// distributed result is bit-identical across task counts and grid
    /// shapes (and to the sequential blocked driver).
    Randomized,
    /// Sketched approximate-matmul Gram: estimates `X_(n) X_(n)ᵀ` from a
    /// stratified row sample (`X Sᵀ S Xᵀ`), trading accuracy for a sample
    /// count that no longer scales with `I^*`. Tunable via
    /// `RandomizedSvdConfig::sketch_rows`; at full sampling it coincides
    /// with [`SvdMethod::Gram`].
    SketchedGram,
    /// Mixed-precision Gram-SVD (the paper's §5 future work): data and TTMs
    /// stay in the working precision, the Gram accumulation and
    /// eigendecomposition run in `f64`. Accuracy floor ~`ε_s·‖A‖` (like
    /// QR-single) at Gram-like structure.
    GramMixed,
}

impl SvdMethod {
    /// Label used in experiment output ("Gram" / "QR", as in the paper).
    pub fn label(self) -> &'static str {
        match self {
            SvdMethod::Gram => "Gram",
            SvdMethod::Qr => "QR",
            SvdMethod::Randomized => "Randomized",
            SvdMethod::SketchedGram => "Sketched Gram",
            SvdMethod::GramMixed => "Gram mixed",
        }
    }
}

/// Order in which ST-HOSVD processes the modes (§4.2.3: the paper considers
/// the forward and backward orderings of the storage order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModeOrder {
    /// `0, 1, ..., N-1`.
    Forward,
    /// `N-1, ..., 1, 0`.
    Backward,
    /// Explicit permutation of `0..N`.
    Custom(Vec<usize>),
}

impl ModeOrder {
    /// Resolve to an explicit permutation for `n` modes.
    pub fn resolve(&self, n: usize) -> Vec<usize> {
        match self {
            ModeOrder::Forward => (0..n).collect(),
            ModeOrder::Backward => (0..n).rev().collect(),
            ModeOrder::Custom(p) => {
                assert_eq!(p.len(), n, "mode order length mismatch");
                let mut seen = vec![false; n];
                for &m in p {
                    assert!(m < n && !seen[m], "mode order must be a permutation");
                    seen[m] = true;
                }
                p.clone()
            }
        }
    }
}

/// Truncation criterion (Alg. 1 line 5, or fixed ranks as in the paper's
/// Video experiment).
#[derive(Clone, Debug, PartialEq)]
pub enum Truncation {
    /// Relative error tolerance ε: per-mode tail threshold `ε²‖X‖²/N`.
    Tolerance(f64),
    /// Fixed per-mode ranks (capped at the mode dimension).
    Ranks(Vec<usize>),
    /// No truncation: full HOSVD factors (used to read off the per-mode
    /// singular value profiles, Figs. 5–7).
    None,
}

/// Full configuration of an ST-HOSVD run.
#[derive(Clone, Debug)]
pub struct SthosvdConfig {
    /// SVD algorithm for the unfoldings.
    pub method: SvdMethod,
    /// Mode processing order.
    pub mode_order: ModeOrder,
    /// Truncation criterion.
    pub truncation: Truncation,
    /// Flat-tree LQ options (sequential QR path).
    pub tslq: TslqOptions,
    /// TSQR reduction tree (parallel QR path).
    pub tree: ReductionTree,
    /// Parameters of the randomized method (used only when
    /// `method == SvdMethod::Randomized`).
    pub randomized: RandomizedSvdConfig,
}

impl SthosvdConfig {
    /// Tolerance-driven config with defaults (QR-SVD, forward order).
    pub fn with_tolerance(eps: f64) -> Self {
        SthosvdConfig {
            method: SvdMethod::Qr,
            mode_order: ModeOrder::Forward,
            truncation: Truncation::Tolerance(eps),
            tslq: TslqOptions::default(),
            tree: ReductionTree::Butterfly,
            randomized: RandomizedSvdConfig::default(),
        }
    }

    /// Fixed-rank config with defaults.
    pub fn with_ranks(ranks: Vec<usize>) -> Self {
        SthosvdConfig { truncation: Truncation::Ranks(ranks), ..Self::with_tolerance(0.0) }
    }

    /// No-truncation config (full HOSVD; singular-value probes).
    pub fn no_truncation() -> Self {
        SthosvdConfig { truncation: Truncation::None, ..Self::with_tolerance(0.0) }
    }

    /// Set the SVD method.
    pub fn method(mut self, m: SvdMethod) -> Self {
        self.method = m;
        self
    }

    /// Set the mode order.
    pub fn order(mut self, o: ModeOrder) -> Self {
        self.mode_order = o;
        self
    }

    /// Set the TSQR reduction tree.
    pub fn tree(mut self, t: ReductionTree) -> Self {
        self.tree = t;
        self
    }

    /// Set flat-tree LQ coalescing.
    pub fn tslq(mut self, t: TslqOptions) -> Self {
        self.tslq = t;
        self
    }

    /// Set the randomized-SVD parameters.
    pub fn randomized(mut self, r: RandomizedSvdConfig) -> Self {
        self.randomized = r;
        self
    }

    /// Validate the sketch-related knobs with typed errors instead of
    /// silently clamping out-of-range values. Called by every driver entry
    /// point (sequential, parallel, checkpointed) before any work starts.
    ///
    /// Per-mode *algorithmic* caps (sketch width at `min(I_n, I^*/I_n)`,
    /// sample count at the unfolding's column count) are not configuration
    /// errors and are still applied inside the drivers.
    pub fn validate(&self) -> Result<(), LinalgError> {
        let r = &self.randomized;
        let uses_sketch =
            matches!(self.method, SvdMethod::Randomized | SvdMethod::SketchedGram);
        if !uses_sketch {
            return Ok(());
        }
        if self.method == SvdMethod::Randomized && !matches!(self.truncation, Truncation::Ranks(_))
        {
            return Err(LinalgError::InvalidConfig {
                param: "truncation",
                value: format!("{:?}", self.truncation),
                expected: "fixed ranks (--ranks) when method is randomized",
            });
        }
        if r.oversampling == 0 || r.oversampling > 512 {
            return Err(LinalgError::InvalidConfig {
                param: "oversampling",
                value: r.oversampling.to_string(),
                expected: "1..=512 extra sketch columns",
            });
        }
        if r.power_iterations > 10 {
            return Err(LinalgError::InvalidConfig {
                param: "power_iterations",
                value: r.power_iterations.to_string(),
                expected: "0..=10 iterations (more only burns flops)",
            });
        }
        if self.method == SvdMethod::SketchedGram && r.sketch_rows != 0 && r.sketch_rows < 4 {
            return Err(LinalgError::InvalidConfig {
                param: "sketch_rows",
                value: r.sketch_rows.to_string(),
                expected: "0 (auto) or at least 4 sampled rows",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_resolution() {
        assert_eq!(ModeOrder::Forward.resolve(4), vec![0, 1, 2, 3]);
        assert_eq!(ModeOrder::Backward.resolve(4), vec![3, 2, 1, 0]);
    }

    #[test]
    fn custom_permutation_accepted() {
        assert_eq!(ModeOrder::Custom(vec![2, 0, 1]).resolve(3), vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_mode_rejected() {
        ModeOrder::Custom(vec![0, 0, 1]).resolve(3);
    }

    #[test]
    fn builder_chain() {
        let cfg = SthosvdConfig::with_tolerance(1e-4)
            .method(SvdMethod::Gram)
            .order(ModeOrder::Backward);
        assert_eq!(cfg.method, SvdMethod::Gram);
        assert_eq!(cfg.mode_order, ModeOrder::Backward);
        assert_eq!(cfg.truncation, Truncation::Tolerance(1e-4));
    }

    #[test]
    fn labels() {
        assert_eq!(SvdMethod::Gram.label(), "Gram");
        assert_eq!(SvdMethod::Qr.label(), "QR");
        assert_eq!(SvdMethod::SketchedGram.label(), "Sketched Gram");
    }

    #[test]
    fn validate_accepts_defaults_and_ignores_non_sketch_methods() {
        assert!(SthosvdConfig::with_ranks(vec![2, 2]).method(SvdMethod::Randomized)
            .validate()
            .is_ok());
        // Out-of-range knobs are irrelevant to deterministic methods.
        let cfg = SthosvdConfig::with_tolerance(1e-3)
            .randomized(RandomizedSvdConfig { oversampling: 0, ..Default::default() });
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_knobs_with_typed_errors() {
        let base = SthosvdConfig::with_ranks(vec![2, 2]).method(SvdMethod::Randomized);
        let bad = |r: RandomizedSvdConfig| base.clone().randomized(r).validate().unwrap_err();
        let e = bad(RandomizedSvdConfig { oversampling: 0, ..Default::default() });
        assert!(matches!(e, LinalgError::InvalidConfig { param: "oversampling", .. }), "{e}");
        let e = bad(RandomizedSvdConfig { oversampling: 513, ..Default::default() });
        assert!(matches!(e, LinalgError::InvalidConfig { param: "oversampling", .. }), "{e}");
        let e = bad(RandomizedSvdConfig { power_iterations: 11, ..Default::default() });
        assert!(matches!(e, LinalgError::InvalidConfig { param: "power_iterations", .. }), "{e}");
        let e = SthosvdConfig::with_tolerance(1e-3)
            .method(SvdMethod::SketchedGram)
            .randomized(RandomizedSvdConfig { sketch_rows: 2, ..Default::default() })
            .validate()
            .unwrap_err();
        assert!(matches!(e, LinalgError::InvalidConfig { param: "sketch_rows", .. }), "{e}");
    }

    #[test]
    fn validate_requires_ranks_for_randomized() {
        let e = SthosvdConfig::with_tolerance(1e-3)
            .method(SvdMethod::Randomized)
            .validate()
            .unwrap_err();
        assert!(matches!(e, LinalgError::InvalidConfig { param: "truncation", .. }), "{e}");
        // SketchedGram is tolerance-capable: it exposes the full spectrum
        // estimate like Gram does.
        assert!(SthosvdConfig::with_tolerance(1e-3)
            .method(SvdMethod::SketchedGram)
            .validate()
            .is_ok());
    }
}
