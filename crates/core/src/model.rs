//! Closed-form α-β-γ cost model of parallel ST-HOSVD (paper §3.5).
//!
//! Evaluates eqs. (9)–(11) of the paper — plus the shared TTM and
//! redistribution terms — for arbitrary tensor dimensions, ranks, processor
//! grids, SVD method and precision, *without running anything*. This is how
//! the benchmark harness extends the scaling figures to the paper's actual
//! machine sizes (up to 2048 cores), which exceed the reproduction host.
//!
//! The simulated runtime charges the same formulas operation by operation;
//! `tests` cross-check the two on small configurations.

use crate::config::SvdMethod;
use tucker_mpisim::CostModel;

/// Heuristic flop count of the redundant symmetric eigendecomposition of an
/// `m x m` Gram matrix (tridiagonalization + QL with vectors ≈ 9·m³).
pub fn evd_flops(m: usize) -> f64 {
    9.0 * (m as f64).powi(3)
}

/// Heuristic flop count of the redundant SVD of an `m x m` triangle
/// (bidiagonalization + accumulation + QR sweeps ≈ 12·m³).
pub fn svd_flops(m: usize) -> f64 {
    12.0 * (m as f64).powi(3)
}

/// Configuration of a modeled run.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Global tensor dimensions.
    pub dims: Vec<usize>,
    /// Truncation ranks per mode (outcome of the run being modeled).
    pub ranks: Vec<usize>,
    /// Processor grid dimensions.
    pub grid: Vec<usize>,
    /// Mode processing order.
    pub order: Vec<usize>,
    /// SVD algorithm.
    pub method: SvdMethod,
    /// Bytes per scalar (4 = single, 8 = double).
    pub bytes: usize,
    /// Machine constants.
    pub cost: CostModel,
}

/// Modeled cost of one mode's processing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModeCost {
    /// Mode index.
    pub mode: usize,
    /// Fiber redistribution time (s).
    pub redistribute: f64,
    /// Local Gram/LQ time including tree or all-reduce (s).
    pub factor: f64,
    /// Redundant EVD/SVD of the small matrix (s).
    pub small_svd: f64,
    /// Truncation TTM time including reduce-scatter (s).
    pub ttm: f64,
}

impl ModeCost {
    /// Total time of this mode.
    pub fn total(&self) -> f64 {
        self.redistribute + self.factor + self.small_svd + self.ttm
    }
}

/// Modeled cost of a full ST-HOSVD run.
#[derive(Clone, Debug, Default)]
pub struct ModelOutput {
    /// Per-mode costs, in processing order.
    pub per_mode: Vec<ModeCost>,
    /// Total modeled time (s).
    pub total: f64,
    /// Total flops charged per rank.
    pub flops_per_rank: f64,
}

impl ModelOutput {
    /// Modeled GFLOP/s per rank (the paper's Fig. 3a metric).
    pub fn gflops_per_rank(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.flops_per_rank / self.total / 1.0e9
        }
    }
}

/// Evaluate the model.
pub fn predict(cfg: &ModelConfig) -> ModelOutput {
    let n_modes = cfg.dims.len();
    assert_eq!(cfg.ranks.len(), n_modes);
    assert_eq!(cfg.grid.len(), n_modes);
    let p_total: usize = cfg.grid.iter().product();
    let gamma = cfg.cost.gamma(cfg.bytes);
    let (alpha, beta) = (cfg.cost.alpha, cfg.cost.beta_per_byte);
    let bytes = cfg.bytes as f64;
    let log_p = (p_total as f64).log2().ceil().max(0.0);

    let mut j: Vec<f64> = cfg.dims.iter().map(|&d| d as f64).collect();
    let mut out = ModelOutput::default();

    for &n in &cfg.order {
        let jn = j[n];
        let jstar: f64 = j.iter().product();
        let local = jstar / p_total as f64; // elements per rank
        let c_loc = local / jn * cfg.grid[n] as f64; // columns per rank after redistribution: J*/(J_n·P*) · P_n rows...
        // After redistribution each rank holds all J_n rows of
        // J*/(J_n·P_total) columns:
        let cols_loc = jstar / (jn * p_total as f64);
        let _ = c_loc;
        let p_n = cfg.grid[n] as f64;
        let mut mc = ModeCost { mode: n, ..Default::default() };

        // Fiber redistribution (skipped when P_n = 1): β·J*/P* + α·(P_n−1).
        if cfg.grid[n] > 1 {
            mc.redistribute = beta * local * bytes + alpha * (p_n - 1.0);
        }

        match cfg.method {
            SvdMethod::Gram => {
                // Local syrk: γ·J_n·J*/P* (eq. 11), derated per the paper's
                // measured syrk efficiency (see CostModel::syrk_derate).
                mc.factor = gamma * cfg.cost.syrk_derate * jn * jstar / p_total as f64;
                // All-reduce of the J_n² Gram matrix: ~2·log P rounds.
                mc.factor += 2.0 * log_p * (alpha + beta * jn * jn * bytes);
                mc.small_svd = gamma * evd_flops(jn as usize);
            }
            SvdMethod::Qr => {
                // Local LQ: γ·2·J_n·J*/P* − (2/3)J_n³ (eq. 9, leading term).
                mc.factor = gamma * (2.0 * jn * jn * cols_loc - 2.0 / 3.0 * jn.powi(3)).max(0.0);
                // Butterfly tree: log P rounds of triangle exchange + tplqt.
                mc.factor += log_p * (alpha + beta * (jn * jn / 2.0) * bytes + gamma * 2.0 * jn.powi(3));
                mc.small_svd = gamma * svd_flops(jn as usize);
            }
            SvdMethod::Randomized => {
                // Sketch Y = AΩ plus projection B = QᵀA: ~4·k·J*/P flops with
                // k = rank + oversampling, plus the (q+2) sketch all-gathers
                // of the J_n × k partials (modeled with the default
                // oversampling of 8 and q = 1).
                let k = cfg.ranks[n] as f64 + 8.0;
                mc.factor = gamma * 4.0 * k * jstar / p_total as f64;
                mc.factor += 3.0 * log_p * (alpha + beta * jn * k * bytes);
                mc.small_svd = gamma * svd_flops(k as usize);
            }
            SvdMethod::SketchedGram => {
                // Sampled-column syrk: γ·J_n²·s/P with s = max(4·J_n, 64)
                // columns (the auto sketch size), then the same J_n²
                // all-reduce and EVD as the exact Gram path.
                let s = (4.0 * jn).max(64.0).min(jstar / jn);
                mc.factor = gamma * cfg.cost.syrk_derate * jn * jn * s / p_total as f64;
                mc.factor += 2.0 * log_p * (alpha + beta * jn * jn * bytes);
                mc.small_svd = gamma * evd_flops(jn as usize);
            }
            SvdMethod::GramMixed => {
                // Local syrk runs in f64 regardless of the data precision;
                // the J_n² all-reduce carries 8-byte words.
                let gd = cfg.cost.gamma(8);
                mc.factor = gd * cfg.cost.syrk_derate * jn * jstar / p_total as f64;
                mc.factor += 2.0 * log_p * (alpha + beta * jn * jn * 8.0);
                mc.small_svd = gd * evd_flops(jn as usize);
            }
        }

        // TTM: local multiply + fiber reduce-scatter.
        let r_n = cfg.ranks[n] as f64;
        mc.ttm = gamma * 2.0 * r_n * local;
        if cfg.grid[n] > 1 {
            let partial = r_n * local / (jn / p_n); // R_n × local columns
            mc.ttm += alpha * (p_n - 1.0) + beta * partial * bytes * (p_n - 1.0) / p_n;
        }

        out.per_mode.push(mc);
        j[n] = r_n;
    }

    // Flops-per-rank from the compute terms only (comm excluded).
    let mut jj: Vec<f64> = cfg.dims.iter().map(|&d| d as f64).collect();
    for &n in &cfg.order {
        let jn = jj[n];
        let jstar: f64 = jj.iter().product();
        let local = jstar / p_total as f64;
        let cols_loc = jstar / (jn * p_total as f64);
        let r_n = cfg.ranks[n] as f64;
        match cfg.method {
            SvdMethod::Gram => {
                out.flops_per_rank += jn * jstar / p_total as f64 + evd_flops(jn as usize);
            }
            SvdMethod::Qr => {
                out.flops_per_rank += (2.0 * jn * jn * cols_loc - 2.0 / 3.0 * jn.powi(3)).max(0.0)
                    + log_p * 2.0 * jn.powi(3)
                    + svd_flops(jn as usize);
            }
            SvdMethod::Randomized => {
                let k = cfg.ranks[n] as f64 + 8.0;
                out.flops_per_rank += 4.0 * k * jstar / p_total as f64 + svd_flops(k as usize);
            }
            SvdMethod::SketchedGram => {
                let s = (4.0 * jn).max(64.0).min(jstar / jn);
                out.flops_per_rank += jn * jn * s / p_total as f64 + evd_flops(jn as usize);
            }
            SvdMethod::GramMixed => {
                out.flops_per_rank += jn * jstar / p_total as f64 + evd_flops(jn as usize);
            }
        }
        out.flops_per_rank += 2.0 * r_n * local;
        jj[n] = r_n;
    }

    out.total = out.per_mode.iter().map(|m| m.total()).sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ModelConfig {
        ModelConfig {
            dims: vec![64, 64, 64, 64],
            ranks: vec![8, 8, 8, 8],
            grid: vec![2, 2, 2, 1],
            order: vec![0, 1, 2, 3],
            method: SvdMethod::Qr,
            bytes: 8,
            cost: CostModel::andes(),
        }
    }

    #[test]
    fn qr_has_roughly_twice_gram_factor_flops() {
        let qr = predict(&base_cfg());
        let gram = predict(&ModelConfig { method: SvdMethod::Gram, ..base_cfg() });
        // First mode dominates; factor ratio ≈ 2 (§3.5).
        let rq = qr.per_mode[0].factor;
        let rg = gram.per_mode[0].factor;
        assert!(rq / rg > 1.5 && rq / rg < 2.6, "ratio {}", rq / rg);
    }

    #[test]
    fn single_precision_is_faster() {
        let d = predict(&base_cfg());
        let s = predict(&ModelConfig { bytes: 4, ..base_cfg() });
        assert!(s.total < d.total);
        // Between 1.5x and 2.5x end-to-end, like the paper's measurements.
        let speedup = d.total / s.total;
        assert!(speedup > 1.3 && speedup < 2.6, "speedup {speedup}");
    }

    #[test]
    fn qr_single_beats_gram_double() {
        // The paper's headline performance result.
        let qr_single = predict(&ModelConfig { bytes: 4, ..base_cfg() });
        let gram_double = predict(&ModelConfig { method: SvdMethod::Gram, ..base_cfg() });
        assert!(
            qr_single.total < gram_double.total,
            "QR single {} should beat Gram double {}",
            qr_single.total,
            gram_double.total
        );
    }

    #[test]
    fn strong_scaling_decreases_time() {
        let p1 = predict(&ModelConfig { grid: vec![1, 1, 1, 1], ..base_cfg() });
        let p8 = predict(&base_cfg());
        let p64 = predict(&ModelConfig { grid: vec![4, 4, 4, 1], ..base_cfg() });
        assert!(p8.total < p1.total);
        assert!(p64.total < p8.total);
        // Efficiency degrades: 64 ranks not 64x faster.
        assert!(p1.total / p64.total < 64.0);
    }

    #[test]
    fn later_modes_are_cheaper() {
        let out = predict(&base_cfg());
        // After truncation the working tensor shrinks drastically.
        assert!(out.per_mode[3].total() < out.per_mode[0].total());
    }

    #[test]
    fn gflops_metric_is_finite_positive() {
        let out = predict(&base_cfg());
        assert!(out.gflops_per_rank() > 0.0);
        assert!(out.gflops_per_rank() < 96.0, "cannot exceed peak");
    }
}
