//! Sequential ST-HOSVD (Alg. 1 of the paper).
//!
//! For each mode (in the configured order): compute the SVD of the current
//! unfolding by Gram-SVD or QR-SVD, pick the truncation rank from the
//! singular value tail, and truncate the working tensor with a TTM. The
//! working tensor — and hence all later modes' costs — shrinks as the
//! algorithm proceeds.

use crate::config::{SthosvdConfig, SvdMethod, Truncation};
use crate::svd_driver::{mode_svd, mode_svd_randomized, mode_svd_sketched_gram};
use crate::truncate::{choose_rank, estimated_error, mode_threshold};
use crate::tucker::TuckerTensor;
use tucker_linalg::{LinalgError, Matrix, Result, Scalar};
use tucker_tensor::{ttm, Tensor};

/// ST-HOSVD result with diagnostic information.
pub struct SthosvdOutput<T> {
    /// The computed decomposition.
    pub tucker: TuckerTensor<T>,
    /// Per-mode singular value profiles (indexed by mode, not by processing
    /// order) — the quantity plotted in the paper's Figs. 5–7.
    pub singular_values: Vec<Vec<T>>,
    /// `‖X‖` as computed in working precision.
    pub norm_x: T,
    /// Estimated relative error from the discarded tails (≤ ε in exact
    /// arithmetic; meaningless when the tail is numerical noise).
    pub estimated_error: T,
}

/// Run ST-HOSVD, returning the decomposition only.
pub fn sthosvd<T: Scalar>(x: &Tensor<T>, cfg: &SthosvdConfig) -> Result<TuckerTensor<T>> {
    Ok(sthosvd_with_info(x, cfg)?.tucker)
}

/// Run ST-HOSVD, returning the decomposition plus singular value profiles
/// and the tail-based error estimate.
pub fn sthosvd_with_info<T: Scalar>(
    x: &Tensor<T>,
    cfg: &SthosvdConfig,
) -> Result<SthosvdOutput<T>> {
    cfg.validate()?;
    let nmodes = x.ndims();
    let order = cfg.mode_order.resolve(nmodes);
    let norm_x = x.norm();
    let threshold = match &cfg.truncation {
        Truncation::Tolerance(eps) => mode_threshold(*eps, norm_x, nmodes),
        _ => T::ZERO,
    };

    let mut y = x.clone();
    let mut factors: Vec<Option<Matrix<T>>> = (0..nmodes).map(|_| None).collect();
    let mut singular_values: Vec<Vec<T>> = (0..nmodes).map(|_| Vec::new()).collect();
    let mut tails_sq: Vec<T> = Vec::with_capacity(nmodes);

    for &n in &order {
        let i_n = y.dims()[n];
        let (u, sigma) = match cfg.method {
            SvdMethod::Randomized => {
                let Truncation::Ranks(r) = &cfg.truncation else {
                    return Err(LinalgError::DimensionMismatch {
                        op: "sthosvd",
                        details: "SvdMethod::Randomized requires Truncation::Ranks".into(),
                    });
                };
                mode_svd_randomized(&y, n, r[n].min(i_n), &cfg.randomized)?
            }
            SvdMethod::SketchedGram => mode_svd_sketched_gram(&y, n, &cfg.randomized)?,
            _ => mode_svd(&y, n, cfg.method, cfg.tslq)?,
        };
        let r_n = match &cfg.truncation {
            Truncation::Tolerance(_) => choose_rank(&sigma, threshold),
            Truncation::Ranks(r) => r[n].min(i_n),
            Truncation::None => i_n,
        }
        // The randomized sketch may expose fewer than I_n directions.
        .min(u.cols());
        let tail: T = sigma[r_n..].iter().map(|&s| s * s).sum();
        tails_sq.push(tail);
        let u_n = u.truncate_cols(r_n);
        y = ttm(&y, n, u_n.as_ref(), true);
        factors[n] = Some(u_n);
        singular_values[n] = sigma;
    }

    let est = estimated_error(&tails_sq, norm_x);
    Ok(SthosvdOutput {
        tucker: TuckerTensor {
            core: y,
            factors: factors.into_iter().map(|f| f.expect("every mode processed")).collect(),
        },
        singular_values,
        norm_x,
        estimated_error: est,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModeOrder, SvdMethod};

    /// A low-multilinear-rank tensor plus small noise.
    fn low_rank_tensor(dims: &[usize], ranks: &[usize], noise: f64) -> Tensor<f64> {
        // Core of prescribed ranks with decaying entries, rotated by smooth
        // (non-orthogonal is fine for rank tests) factors.
        let mut g = Tensor::zeros(ranks);
        {
            let data = g.data_mut();
            for (k, v) in data.iter_mut().enumerate() {
                *v = 1.0 / (1.0 + k as f64);
            }
        }
        let mut y = g;
        for (n, (&d, &r)) in dims.iter().zip(ranks).enumerate() {
            let u = Matrix::from_fn(d, r, |i, j| (((i + 1) * (j + 2) * (n + 3)) as f64 * 0.37).sin());
            y = ttm(&y, n, u.as_ref(), false);
        }
        if noise > 0.0 {
            let data = y.data_mut();
            for (k, v) in data.iter_mut().enumerate() {
                *v += noise * ((k as f64) * 1.618).sin();
            }
        }
        y
    }

    #[test]
    fn exact_low_rank_is_recovered() {
        let x = low_rank_tensor(&[8, 9, 7], &[2, 3, 2], 0.0);
        // Gram-SVD's zero singular values are computed as noise at the
        // √ε_d·‖A‖ ≈ 1e-8 level, so it can only meet tolerances above that
        // floor; QR-SVD works down to ε_d (the paper's Theorem 1 vs 2).
        for (method, eps) in [(SvdMethod::Gram, 1e-6), (SvdMethod::Qr, 1e-6), (SvdMethod::Qr, 1e-10)]
        {
            let cfg = SthosvdConfig::with_tolerance(eps).method(method);
            let out = sthosvd_with_info(&x, &cfg).unwrap();
            assert_eq!(out.tucker.ranks(), vec![2, 3, 2], "{method:?} eps={eps}");
            let err = out.tucker.relative_error(&x).to_f64();
            assert!(err < eps, "{method:?} eps={eps}: err {err}");
        }
    }

    #[test]
    fn error_guarantee_holds() {
        let x = low_rank_tensor(&[8, 8, 8], &[3, 3, 3], 1e-3);
        for eps in [1e-1, 1e-2] {
            for method in [SvdMethod::Gram, SvdMethod::Qr] {
                let cfg = SthosvdConfig::with_tolerance(eps).method(method);
                let out = sthosvd_with_info(&x, &cfg).unwrap();
                let err = out.tucker.relative_error(&x).to_f64();
                assert!(err <= eps * 1.05, "{method:?} eps={eps}: err {err}");
                // The estimate brackets the truth up to roundoff.
                assert!(out.estimated_error.to_f64() <= eps * 1.05);
            }
        }
    }

    #[test]
    fn mode_order_does_not_change_guarantee() {
        let x = low_rank_tensor(&[6, 7, 8], &[2, 2, 2], 1e-4);
        for order in [ModeOrder::Forward, ModeOrder::Backward, ModeOrder::Custom(vec![1, 2, 0])] {
            let cfg = SthosvdConfig::with_tolerance(1e-2).order(order.clone());
            let tk = sthosvd(&x, &cfg).unwrap();
            let err = tk.relative_error(&x);
            assert!(err <= 1.05e-2, "{order:?}: err {err}");
        }
    }

    #[test]
    fn fixed_ranks_are_respected() {
        let x = low_rank_tensor(&[8, 8, 8], &[4, 4, 4], 1e-2);
        let cfg = SthosvdConfig::with_ranks(vec![3, 2, 5]);
        let tk = sthosvd(&x, &cfg).unwrap();
        assert_eq!(tk.ranks(), vec![3, 2, 5]);
        assert_eq!(tk.factors[0].shape(), (8, 3));
        assert_eq!(tk.factors[2].shape(), (8, 5));
    }

    #[test]
    fn ranks_capped_at_dimension() {
        let x = low_rank_tensor(&[4, 5, 3], &[2, 2, 2], 0.0);
        let cfg = SthosvdConfig::with_ranks(vec![10, 10, 10]);
        let tk = sthosvd(&x, &cfg).unwrap();
        assert_eq!(tk.ranks(), vec![4, 5, 3]);
    }

    #[test]
    fn no_truncation_reproduces_tensor() {
        let x = low_rank_tensor(&[5, 4, 6], &[5, 4, 6], 0.0);
        let cfg = SthosvdConfig::no_truncation();
        let out = sthosvd_with_info(&x, &cfg).unwrap();
        assert_eq!(out.tucker.ranks(), vec![5, 4, 6]);
        let err = out.tucker.relative_error(&x);
        assert!(err < 1e-12, "full HOSVD must be exact: {err}");
        // Singular value profiles recorded for every mode.
        for n in 0..3 {
            assert_eq!(out.singular_values[n].len(), x.dims()[n]);
        }
    }

    #[test]
    fn quasi_optimality_factor() {
        // ST-HOSVD error ≤ √N × optimal; with a generous margin we check the
        // error is not wildly above the tail estimate.
        let x = low_rank_tensor(&[7, 7, 7], &[3, 3, 3], 1e-3);
        let cfg = SthosvdConfig::with_tolerance(5e-3);
        let out = sthosvd_with_info(&x, &cfg).unwrap();
        let exact = out.tucker.relative_error(&x).to_f64();
        let est = out.estimated_error.to_f64();
        assert!(exact <= est * 1.1 + 1e-12, "exact {exact} vs est {est}");
    }

    #[test]
    fn single_precision_end_to_end() {
        let x64 = low_rank_tensor(&[6, 6, 6], &[2, 2, 2], 1e-3);
        let x32: Tensor<f32> = x64.cast();
        for method in [SvdMethod::Gram, SvdMethod::Qr] {
            let cfg = SthosvdConfig::with_tolerance(1e-2).method(method);
            let tk = sthosvd(&x32, &cfg).unwrap();
            let err = tk.relative_error(&x32);
            assert!(err <= 1.1e-2, "{method:?}: err {err}");
        }
    }

    /// The paper's headline numerical claim at the ST-HOSVD level: with a
    /// tolerance between ε_s and √ε_s, Gram-single fails to compress while
    /// QR-single compresses fine.
    #[test]
    fn gram_single_fails_where_qr_single_works() {
        // Build a tensor whose per-mode spectra decay to ~1e-6.
        let x64 = {
            let dims = [12usize, 12, 12];
            let mut y = Tensor::<f64>::zeros(&dims);
            // Superdiagonal core: exact multilinear spectra decaying over 8
            // orders of magnitude — most values sit below the Gram-single
            // noise floor √ε_s ≈ 3e-4 but above QR-single's ε_s.
            for k in 0..12 {
                let idx = [k, k, k];
                y.set(&idx, 10f64.powf(-(8.0 * k as f64) / 11.0));
            }
            // Rotate by random orthogonal factors so the unfoldings are dense
            // (a diagonal Gram matrix would hide the cancellation error that
            // creates the noise floor — the paper uses random singular
            // vectors for the same reason).
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            for n in 0..3 {
                let q = tucker_linalg::random_orthogonal::<f64, _>(12, 12, &mut rng);
                y = ttm(&y, n, q.as_ref(), false);
            }
            y
        };
        let x32: Tensor<f32> = x64.cast();
        let eps = 1e-4;

        let qr = sthosvd(&x32, &SthosvdConfig::with_tolerance(eps).method(SvdMethod::Qr)).unwrap();
        let gram =
            sthosvd(&x32, &SthosvdConfig::with_tolerance(eps).method(SvdMethod::Gram)).unwrap();
        // QR-single: sees the true decay and truncates hard.
        assert!(qr.ranks().iter().all(|&r| r <= 8), "QR should compress: {:?}", qr.ranks());
        // Gram-single: the tail is noise at ~√ε_s·σ₁; its accumulated energy
        // far exceeds the 1e-4 budget, so essentially nothing is truncated.
        assert!(
            gram.ranks().iter().all(|&r| r >= 10),
            "Gram-single should fail to compress: {:?}",
            gram.ranks()
        );
        assert!(
            qr.compression_ratio() > 2.0 * gram.compression_ratio(),
            "QR {} vs Gram {}",
            qr.compression_ratio(),
            gram.compression_ratio()
        );

        // The §5 future-work variant: mixed-precision Gram on the same f32
        // data recovers QR-single's compression (f64 accumulation removes
        // the √ε floor).
        let mixed =
            sthosvd(&x32, &SthosvdConfig::with_tolerance(eps).method(SvdMethod::GramMixed))
                .unwrap();
        assert!(
            mixed.ranks().iter().zip(qr.ranks()).all(|(&m, q)| m <= q + 1),
            "GramMixed should compress like QR-single: {:?} vs {:?}",
            mixed.ranks(),
            qr.ranks()
        );
    }
}
