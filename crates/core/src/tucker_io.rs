//! Tucker decomposition file I/O ("TUCK" format): a core tensor plus one
//! factor matrix per mode, self-describing, little-endian.
//!
//! Version 2 (current) adds per-section CRC-32 checksums so that a store
//! opened for query serving ([`tucker-serve`]'s `TuckerStore`) can reject a
//! corrupted file with a typed error naming the damaged section instead of
//! silently serving garbage. Version-1 files (no checksums) remain readable.
//!
//! ```text
//! magic    4 bytes  b"TUCK"
//! version  u32      2 (1 accepted for reading)
//! scalar   u32      4 or 8
//! nmodes   u32
//! per mode: rows u64, cols u64 (factor shapes; cols = core dims)
//! v2 only: header crc32, one crc32 per factor, core crc32
//! factors  column-major scalars, mode order
//! core     scalars, first-mode-fastest
//! ```
//!
//! The header checksum covers every byte from the magic through the shape
//! table; each payload checksum covers that section's scalar bytes exactly as
//! they appear on disk.

use crate::crc32::Crc32;
use crate::tucker::TuckerTensor;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tucker_linalg::Matrix;
use tucker_tensor::io::IoScalar;
use tucker_tensor::Tensor;

const MAGIC: &[u8; 4] = b"TUCK";
/// Current (checksummed) container version.
pub const VERSION: u32 = 2;
/// Legacy checksum-free container version, still readable.
pub const VERSION_V1: u32 = 1;

/// A region of a TUCK file protected by its own checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Section {
    /// Magic, version, scalar tag, and the shape table.
    Header,
    /// Factor matrix of the given mode.
    Factor(usize),
    /// The core tensor payload.
    Core,
}

impl fmt::Display for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Section::Header => write!(f, "header"),
            Section::Factor(n) => write!(f, "factor[{n}]"),
            Section::Core => write!(f, "core"),
        }
    }
}

/// Typed error for TUCK container I/O.
#[derive(Debug)]
pub enum TuckerIoError {
    /// Underlying filesystem/stream error (includes truncation).
    Io(io::Error),
    /// The file is not a TUCK container or its header is malformed.
    Format(String),
    /// The container version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// The file stores a different scalar width than requested.
    PrecisionMismatch {
        /// Scalar byte width recorded in the file.
        file: u32,
        /// Scalar byte width the caller asked for.
        requested: u32,
    },
    /// A section's stored CRC-32 does not match its bytes.
    ChecksumMismatch {
        /// Which section is damaged.
        section: Section,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum computed from the bytes actually read.
        computed: u32,
    },
}

impl fmt::Display for TuckerIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuckerIoError::Io(e) => write!(f, "tucker file I/O error: {e}"),
            TuckerIoError::Format(msg) => write!(f, "bad TUCK file: {msg}"),
            TuckerIoError::UnsupportedVersion(v) => {
                write!(f, "unsupported TUCK version {v} (this reader understands 1 and 2)")
            }
            TuckerIoError::PrecisionMismatch { file, requested } => write!(
                f,
                "file stores {file}-byte scalars but {requested}-byte scalars were requested"
            ),
            TuckerIoError::ChecksumMismatch { section, stored, computed } => write!(
                f,
                "checksum mismatch in {section} section: stored {stored:#010x}, computed {computed:#010x} — file is corrupted"
            ),
        }
    }
}

impl std::error::Error for TuckerIoError {}

impl From<io::Error> for TuckerIoError {
    fn from(e: io::Error) -> Self {
        TuckerIoError::Io(e)
    }
}

/// Result alias for this module.
pub type IoResult<T> = std::result::Result<T, TuckerIoError>;

/// Cheap-to-read description of a TUCK file (no payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuckerHeader {
    /// Container version (1 or 2).
    pub version: u32,
    /// Scalar byte width (4 or 8).
    pub scalar: u32,
    /// Per-mode factor shapes `(rows, cols)`; `cols` are the core dims.
    pub shapes: Vec<(usize, usize)>,
}

impl TuckerHeader {
    /// Original tensor dimensions (factor row counts).
    pub fn dims(&self) -> Vec<usize> {
        self.shapes.iter().map(|&(r, _)| r).collect()
    }

    /// Multilinear ranks (factor column counts = core dims).
    pub fn ranks(&self) -> Vec<usize> {
        self.shapes.iter().map(|&(_, c)| c).collect()
    }
}

/// A Tucker decomposition read at whichever precision the file stores.
#[derive(Clone, Debug)]
pub enum AnyTucker {
    /// Single-precision contents.
    F32(TuckerTensor<f32>),
    /// Double-precision contents.
    F64(TuckerTensor<f64>),
}

/// `Read` adapter that feeds every byte it delivers through a CRC-32 hasher.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        CrcReader { inner, crc: Crc32::new() }
    }

    /// Digest of everything read since the last call, resetting the hasher.
    /// (Named to avoid colliding with `Read::take` in method resolution.)
    fn take_crc(&mut self) -> u32 {
        self.crc.take()
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

/// `Write` adapter that discards bytes into a CRC-32 hasher (used to
/// checksum payload sections without buffering them).
struct CrcSink<'a>(&'a mut Crc32);

impl Write for CrcSink<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.update(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn section_crc<T: IoScalar>(data: &[T]) -> u32 {
    let mut crc = Crc32::new();
    {
        let mut sink = CrcSink(&mut crc);
        for &v in data {
            v.write_le(&mut sink).expect("CRC sink cannot fail");
        }
    }
    crc.finish()
}

/// Serialized header bytes (magic through shape table) for `tk`.
fn header_bytes<T: IoScalar>(tk: &TuckerTensor<T>, version: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(16 + 16 * tk.factors.len());
    h.extend_from_slice(MAGIC);
    h.extend_from_slice(&version.to_le_bytes());
    h.extend_from_slice(&T::TAG.to_le_bytes());
    h.extend_from_slice(&(tk.factors.len() as u32).to_le_bytes());
    for u in &tk.factors {
        h.extend_from_slice(&(u.rows() as u64).to_le_bytes());
        h.extend_from_slice(&(u.cols() as u64).to_le_bytes());
    }
    h
}

fn write_payload<T: IoScalar>(w: &mut impl Write, tk: &TuckerTensor<T>) -> io::Result<()> {
    for u in &tk.factors {
        for &v in u.data() {
            v.write_le(w)?;
        }
    }
    for &v in tk.core.data() {
        v.write_le(w)?;
    }
    Ok(())
}

/// Write a Tucker decomposition in the current (v2, checksummed) format.
pub fn write_tucker<T: IoScalar>(path: impl AsRef<Path>, tk: &TuckerTensor<T>) -> IoResult<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = header_bytes(tk, VERSION);
    w.write_all(&header)?;
    write_u32(&mut w, crate::crc32::crc32(&header))?;
    for u in &tk.factors {
        write_u32(&mut w, section_crc(u.data()))?;
    }
    write_u32(&mut w, section_crc(tk.core.data()))?;
    write_payload(&mut w, tk)?;
    w.flush()?;
    Ok(())
}

/// Write the legacy v1 (checksum-free) layout. Kept for compatibility
/// testing and for producing files consumable by pre-v2 readers.
pub fn write_tucker_v1<T: IoScalar>(path: impl AsRef<Path>, tk: &TuckerTensor<T>) -> IoResult<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&header_bytes(tk, VERSION_V1))?;
    write_payload(&mut w, tk)?;
    w.flush()?;
    Ok(())
}

/// Parse the header (magic through shape table) from `r`, leaving the cursor
/// at the checksum table (v2) or the payload (v1).
fn read_header_from(r: &mut impl Read) -> IoResult<TuckerHeader> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TuckerIoError::Format("not a TUCK file".into()));
    }
    let version = read_u32(r)?;
    if version != VERSION && version != VERSION_V1 {
        return Err(TuckerIoError::UnsupportedVersion(version));
    }
    let scalar = read_u32(r)?;
    if scalar != 4 && scalar != 8 {
        return Err(TuckerIoError::Format(format!("unknown scalar width {scalar}")));
    }
    let nmodes = read_u32(r)? as usize;
    if nmodes > 16 {
        return Err(TuckerIoError::Format(format!("implausible mode count {nmodes}")));
    }
    let mut shapes = Vec::with_capacity(nmodes);
    for _ in 0..nmodes {
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        shapes.push((rows, cols));
    }
    Ok(TuckerHeader { version, scalar, shapes })
}

/// Read only the header — version, precision, and shapes — without touching
/// the payload. In a v2 file the header checksum is verified.
pub fn read_tucker_header(path: impl AsRef<Path>) -> IoResult<TuckerHeader> {
    let mut r = CrcReader::new(BufReader::new(File::open(path)?));
    let header = read_header_from(&mut r)?;
    if header.version >= VERSION {
        let computed = r.take_crc();
        let stored = read_u32(&mut r)?;
        if stored != computed {
            return Err(TuckerIoError::ChecksumMismatch {
                section: Section::Header,
                stored,
                computed,
            });
        }
    }
    Ok(header)
}

/// Read a Tucker decomposition stored at precision `T`, verifying every
/// section checksum when the file is v2.
pub fn read_tucker<T: IoScalar>(path: impl AsRef<Path>) -> IoResult<TuckerTensor<T>> {
    let mut r = CrcReader::new(BufReader::new(File::open(path)?));
    let header = read_header_from(&mut r)?;
    let header_crc = r.take_crc();
    if header.scalar != T::TAG {
        return Err(TuckerIoError::PrecisionMismatch { file: header.scalar, requested: T::TAG });
    }
    // v2: the checksum table sits between header and payload. The header is
    // validated before any payload-sized allocation happens, so a corrupted
    // shape table cannot drive a bogus huge read.
    let checksums = if header.version >= VERSION {
        let stored_header = read_u32(&mut r)?;
        if stored_header != header_crc {
            return Err(TuckerIoError::ChecksumMismatch {
                section: Section::Header,
                stored: stored_header,
                computed: header_crc,
            });
        }
        let mut table = Vec::with_capacity(header.shapes.len() + 1);
        for _ in 0..header.shapes.len() + 1 {
            table.push(read_u32(&mut r)?);
        }
        r.take_crc(); // the table itself is not part of any section digest
        Some(table)
    } else {
        None
    };

    let mut factors = Vec::with_capacity(header.shapes.len());
    for (n, &(rows, cols)) in header.shapes.iter().enumerate() {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(T::read_le(&mut r)?);
        }
        if let Some(table) = &checksums {
            let computed = r.take_crc();
            if table[n] != computed {
                return Err(TuckerIoError::ChecksumMismatch {
                    section: Section::Factor(n),
                    stored: table[n],
                    computed,
                });
            }
        }
        factors.push(Matrix::from_col_major(rows, cols, data));
    }
    let core_dims: Vec<usize> = header.shapes.iter().map(|&(_, c)| c).collect();
    let total: usize = core_dims.iter().product();
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(T::read_le(&mut r)?);
    }
    if let Some(table) = &checksums {
        let computed = r.take_crc();
        let stored = table[header.shapes.len()];
        if stored != computed {
            return Err(TuckerIoError::ChecksumMismatch { section: Section::Core, stored, computed });
        }
    }
    Ok(TuckerTensor { core: Tensor::from_data(&core_dims, data), factors })
}

/// Read a Tucker decomposition at whichever precision the file stores,
/// dispatching on the header's scalar tag (the CLI's `decompress`/`info`
/// pattern, deduplicated).
pub fn read_tucker_any(path: impl AsRef<Path>) -> IoResult<AnyTucker> {
    let header = read_tucker_header(&path)?;
    match header.scalar {
        4 => Ok(AnyTucker::F32(read_tucker::<f32>(path)?)),
        _ => Ok(AnyTucker::F64(read_tucker::<f64>(path)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SthosvdConfig;
    use crate::sthosvd::sthosvd;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tucker_tkio_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> (Tensor<f64>, TuckerTensor<f64>) {
        let x = Tensor::from_fn(&[8, 7, 6], |i| {
            10f64.powf(-(i[0] as f64)) * ((i[1] * 6 + i[2]) as f64 * 0.31).sin()
        });
        let tk = sthosvd(&x, &SthosvdConfig::with_tolerance(1e-3)).unwrap();
        (x, tk)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (x, tk) = sample();
        let p = tmp("a.tkr");
        write_tucker(&p, &tk).unwrap();
        let back: TuckerTensor<f64> = read_tucker(&p).unwrap();
        assert_eq!(back.ranks(), tk.ranks());
        assert_eq!(back.core, tk.core);
        for (a, b) in back.factors.iter().zip(&tk.factors) {
            assert_eq!(a, b);
        }
        // Reconstruction identical ⇒ error identical.
        assert_eq!(back.relative_error(&x), tk.relative_error(&x));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = tmp("b.tkr");
        std::fs::write(&p, b"TNSRxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(read_tucker::<f64>(&p), Err(TuckerIoError::Format(_))));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn single_precision_roundtrip() {
        let (_, tk64) = sample();
        let tk = TuckerTensor::<f32> {
            core: tk64.core.cast(),
            factors: tk64
                .factors
                .iter()
                .map(|u| Matrix::from_fn(u.rows(), u.cols(), |i, j| u[(i, j)] as f32))
                .collect(),
        };
        let p = tmp("c.tkr");
        write_tucker(&p, &tk).unwrap();
        let back: TuckerTensor<f32> = read_tucker(&p).unwrap();
        assert_eq!(back.core, tk.core);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn v1_files_still_readable() {
        let (_, tk) = sample();
        let p = tmp("v1.tkr");
        write_tucker_v1(&p, &tk).unwrap();
        let header = read_tucker_header(&p).unwrap();
        assert_eq!(header.version, VERSION_V1);
        let back: TuckerTensor<f64> = read_tucker(&p).unwrap();
        assert_eq!(back.core, tk.core);
        assert_eq!(back.factors, tk.factors);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn header_reports_dims_ranks_and_precision() {
        let (x, tk) = sample();
        let p = tmp("h.tkr");
        write_tucker(&p, &tk).unwrap();
        let h = read_tucker_header(&p).unwrap();
        assert_eq!(h.version, VERSION);
        assert_eq!(h.scalar, 8);
        assert_eq!(h.dims(), x.dims());
        assert_eq!(h.ranks(), tk.ranks());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn read_any_dispatches_on_stored_precision() {
        let (_, tk) = sample();
        let p = tmp("any.tkr");
        write_tucker(&p, &tk).unwrap();
        match read_tucker_any(&p).unwrap() {
            AnyTucker::F64(back) => assert_eq!(back.core, tk.core),
            AnyTucker::F32(_) => panic!("double file decoded as single"),
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn precision_mismatch_is_typed() {
        let (_, tk) = sample();
        let p = tmp("pm.tkr");
        write_tucker(&p, &tk).unwrap();
        match read_tucker::<f32>(&p) {
            Err(TuckerIoError::PrecisionMismatch { file: 8, requested: 4 }) => {}
            other => panic!("want PrecisionMismatch, got {other:?}"),
        }
        std::fs::remove_file(p).ok();
    }

    /// Byte offsets of each section in a v2 file for `tk`.
    fn layout<T: IoScalar>(tk: &TuckerTensor<T>) -> Vec<(Section, usize, usize)> {
        let header_len = 16 + 16 * tk.factors.len();
        let table_len = 4 * (tk.factors.len() + 2);
        let mut off = header_len + table_len;
        let mut out = vec![(Section::Header, 0, header_len)];
        for (n, u) in tk.factors.iter().enumerate() {
            let len = u.data().len() * T::TAG as usize;
            out.push((Section::Factor(n), off, len));
            off += len;
        }
        out.push((Section::Core, off, tk.core.len() * T::TAG as usize));
        out
    }

    #[test]
    fn corruption_in_every_section_is_rejected_and_named() {
        let (_, tk) = sample();
        let p = tmp("corrupt.tkr");
        write_tucker(&p, &tk).unwrap();
        let pristine = std::fs::read(&p).unwrap();
        for (section, off, len) in layout(&tk) {
            assert!(len > 0, "empty section {section}");
            let mut bytes = pristine.clone();
            // Flip one bit in the middle of the section.
            bytes[off + len / 2] ^= 0x04;
            std::fs::write(&p, &bytes).unwrap();
            match read_tucker::<f64>(&p) {
                Err(TuckerIoError::ChecksumMismatch { section: got, stored, computed }) => {
                    assert_eq!(got, section, "corruption attributed to the wrong section");
                    assert_ne!(stored, computed);
                    // The rendered error names the section for the operator.
                    let msg = TuckerIoError::ChecksumMismatch { section: got, stored, computed }
                        .to_string();
                    assert!(msg.contains(&section.to_string()), "{msg}");
                }
                // A header bit-flip may instead land in a validated field
                // (magic/version/width), which is also a typed rejection.
                Err(TuckerIoError::Format(_)) | Err(TuckerIoError::UnsupportedVersion(_))
                    if section == Section::Header => {}
                other => panic!("flip in {section}: want typed rejection, got {other:?}"),
            }
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn corrupted_checksum_table_entry_is_rejected() {
        let (_, tk) = sample();
        let p = tmp("table.tkr");
        write_tucker(&p, &tk).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // First factor's table slot: header + header-crc.
        let slot = 16 + 16 * tk.factors.len() + 4;
        bytes[slot] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        match read_tucker::<f64>(&p) {
            Err(TuckerIoError::ChecksumMismatch { section: Section::Factor(0), .. }) => {}
            other => panic!("want Factor(0) mismatch, got {other:?}"),
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn truncated_payload_is_io_error_not_panic() {
        let (_, tk) = sample();
        let p = tmp("trunc.tkr");
        write_tucker(&p, &tk).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(read_tucker::<f64>(&p), Err(TuckerIoError::Io(_))));
        std::fs::remove_file(p).ok();
    }
}
