//! Tucker decomposition file I/O ("TUCK" format): a core tensor plus one
//! factor matrix per mode, self-describing, little-endian.
//!
//! ```text
//! magic   4 bytes  b"TUCK"
//! version u32      1
//! scalar  u32      4 or 8
//! nmodes  u32
//! per mode: rows u64, cols u64 (factor shapes; cols = core dims)
//! factors  column-major scalars, mode order
//! core     scalars, first-mode-fastest
//! ```

use crate::tucker::TuckerTensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tucker_linalg::Matrix;
use tucker_tensor::io::IoScalar;
use tucker_tensor::Tensor;

const MAGIC: &[u8; 4] = b"TUCK";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Write a Tucker decomposition.
pub fn write_tucker<T: IoScalar>(path: impl AsRef<Path>, tk: &TuckerTensor<T>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, T::TAG)?;
    write_u32(&mut w, tk.factors.len() as u32)?;
    for u in &tk.factors {
        write_u64(&mut w, u.rows() as u64)?;
        write_u64(&mut w, u.cols() as u64)?;
    }
    for u in &tk.factors {
        for &v in u.data() {
            v.write_le(&mut w)?;
        }
    }
    for &v in tk.core.data() {
        v.write_le(&mut w)?;
    }
    w.flush()
}

/// Read a Tucker decomposition stored at precision `T`.
pub fn read_tucker<T: IoScalar>(path: impl AsRef<Path>) -> io::Result<TuckerTensor<T>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a TUCK file"));
    }
    if read_u32(&mut r)? != VERSION {
        return Err(bad("unsupported TUCK version"));
    }
    if read_u32(&mut r)? != T::TAG {
        return Err(bad("file precision does not match the requested scalar type"));
    }
    let nmodes = read_u32(&mut r)? as usize;
    if nmodes > 16 {
        return Err(bad("implausible mode count"));
    }
    let mut shapes = Vec::with_capacity(nmodes);
    for _ in 0..nmodes {
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        shapes.push((rows, cols));
    }
    let mut factors = Vec::with_capacity(nmodes);
    for &(rows, cols) in &shapes {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(T::read_le(&mut r)?);
        }
        factors.push(Matrix::from_col_major(rows, cols, data));
    }
    let core_dims: Vec<usize> = shapes.iter().map(|&(_, c)| c).collect();
    let total: usize = core_dims.iter().product();
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(T::read_le(&mut r)?);
    }
    Ok(TuckerTensor { core: Tensor::from_data(&core_dims, data), factors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SthosvdConfig;
    use crate::sthosvd::sthosvd;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tucker_tkio_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> (Tensor<f64>, TuckerTensor<f64>) {
        let x = Tensor::from_fn(&[8, 7, 6], |i| {
            10f64.powf(-(i[0] as f64)) * ((i[1] * 6 + i[2]) as f64 * 0.31).sin()
        });
        let tk = sthosvd(&x, &SthosvdConfig::with_tolerance(1e-3)).unwrap();
        (x, tk)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (x, tk) = sample();
        let p = tmp("a.tkr");
        write_tucker(&p, &tk).unwrap();
        let back: TuckerTensor<f64> = read_tucker(&p).unwrap();
        assert_eq!(back.ranks(), tk.ranks());
        assert_eq!(back.core, tk.core);
        for (a, b) in back.factors.iter().zip(&tk.factors) {
            assert_eq!(a, b);
        }
        // Reconstruction identical ⇒ error identical.
        assert_eq!(back.relative_error(&x), tk.relative_error(&x));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = tmp("b.tkr");
        std::fs::write(&p, b"TNSRxxxxxxxxxxxxxxxx").unwrap();
        assert!(read_tucker::<f64>(&p).is_err());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn single_precision_roundtrip() {
        let (_, tk64) = sample();
        let tk = TuckerTensor::<f32> {
            core: tk64.core.cast(),
            factors: tk64
                .factors
                .iter()
                .map(|u| Matrix::from_fn(u.rows(), u.cols(), |i, j| u[(i, j)] as f32))
                .collect(),
        };
        let p = tmp("c.tkr");
        write_tucker(&p, &tk).unwrap();
        let back: TuckerTensor<f32> = read_tucker(&p).unwrap();
        assert_eq!(back.core, tk.core);
        std::fs::remove_file(p).ok();
    }
}
