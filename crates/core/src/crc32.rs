//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte streams.
//!
//! Used by the TUCK v2 container ([`crate::tucker_io`]) for per-section
//! integrity checks and by the serving layer to fingerprint query results.
//! Table-driven, one table lookup per byte; the table is built at compile
//! time so the dependency-free constraint of this workspace holds.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final digest (the hasher can keep absorbing; this is a snapshot).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// Digest and reset to the fresh state — section-boundary helper.
    pub fn take(&mut self) -> u32 {
        let out = self.finish();
        self.state = 0xFFFF_FFFF;
        out
    }
}

/// One-shot convenience.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"split across several update calls";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn take_resets() {
        let mut h = Crc32::new();
        h.update(b"123456789");
        assert_eq!(h.take(), 0xCBF4_3926);
        h.update(b"123456789");
        assert_eq!(h.take(), 0xCBF4_3926);
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut a = b"sensitive payload bytes".to_vec();
        let base = crc32(&a);
        for i in 0..a.len() {
            a[i] ^= 0x10;
            assert_ne!(crc32(&a), base, "flip at byte {i} undetected");
            a[i] ^= 0x10;
        }
    }
}
