//! The Tucker tensor: core `G` + factor matrices `{U_n}` with
//! `X ≈ G ×_0 U_0 ×_1 U_1 ··· ×_{N-1} U_{N-1}`.

use tucker_linalg::{Matrix, Scalar};
use tucker_tensor::{ttm, Tensor};

/// A Tucker decomposition/approximation.
#[derive(Clone, Debug)]
pub struct TuckerTensor<T> {
    /// Core tensor `G` with dimensions `R_0 x ... x R_{N-1}`.
    pub core: Tensor<T>,
    /// Factor matrices, `factors[n]` of shape `I_n x R_n`.
    pub factors: Vec<Matrix<T>>,
}

impl<T: Scalar> TuckerTensor<T> {
    /// Multilinear ranks `R_n`.
    pub fn ranks(&self) -> Vec<usize> {
        self.core.dims().to_vec()
    }

    /// Dimensions of the tensor this approximates.
    pub fn original_dims(&self) -> Vec<usize> {
        self.factors.iter().map(|u| u.rows()).collect()
    }

    /// Number of stored parameters (core + factors).
    pub fn num_parameters(&self) -> usize {
        self.core.len() + self.factors.iter().map(|u| u.rows() * u.cols()).sum::<usize>()
    }

    /// Compression ratio: original elements / stored parameters (TuckerMPI's
    /// reported metric; the paper's Tabs. 2–3 "compression" column).
    pub fn compression_ratio(&self) -> f64 {
        let original: usize = self.original_dims().iter().product();
        original as f64 / self.num_parameters() as f64
    }

    /// Reconstruct the full tensor `G ×_0 U_0 ··· ×_{N-1} U_{N-1}`.
    pub fn reconstruct(&self) -> Tensor<T> {
        let mut y = self.core.clone();
        for (n, u) in self.factors.iter().enumerate() {
            y = ttm(&y, n, u.as_ref(), false);
        }
        y
    }

    /// Exact relative approximation error `‖X − X̂‖/‖X‖` against a reference.
    pub fn relative_error(&self, x: &Tensor<T>) -> T {
        x.relative_error_to(&self.reconstruct())
    }

    /// Relative error via the core-norm identity, **without reconstructing**:
    /// for orthonormal factors computed by (ST-)HOSVD (so that `X̂` is the
    /// orthogonal projection of `X`), `‖X − X̂‖² = ‖X‖² − ‖G‖²`.
    ///
    /// This is how TuckerMPI reports errors at terabyte scale, where
    /// reconstruction is unaffordable. `norm_x` is `‖X‖` in working
    /// precision. Roundoff can make the difference slightly negative; it is
    /// clamped to zero.
    pub fn relative_error_via_core(&self, norm_x: T) -> T {
        let ng = self.core.norm();
        let diff = (norm_x * norm_x - ng * ng).max(T::ZERO);
        diff.sqrt() / norm_x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank1_tucker() -> (TuckerTensor<f64>, Tensor<f64>) {
        // X(i,j) = a_i b_j with unit factors: core [[2]], factors a, b.
        let a = Matrix::from_row_major(3, 1, &[1.0, 0.0, 0.0]);
        let b = Matrix::from_row_major(4, 1, &[0.0, 1.0, 0.0, 0.0]);
        let core = Tensor::from_fn(&[1, 1], |_| 2.0);
        let x = Tensor::from_fn(&[3, 4], |i| if i[0] == 0 && i[1] == 1 { 2.0 } else { 0.0 });
        (TuckerTensor { core, factors: vec![a, b] }, x)
    }

    #[test]
    fn reconstruct_rank_one() {
        let (tk, x) = rank1_tucker();
        assert!(tk.reconstruct().max_abs_diff(&x) < 1e-15);
        assert_eq!(tk.relative_error(&x), 0.0);
    }

    #[test]
    fn ranks_and_dims() {
        let (tk, _) = rank1_tucker();
        assert_eq!(tk.ranks(), vec![1, 1]);
        assert_eq!(tk.original_dims(), vec![3, 4]);
    }

    #[test]
    fn core_norm_identity_matches_exact_error() {
        // Build a genuine ST-HOSVD output and compare the two error paths.
        use crate::config::SthosvdConfig;
        use crate::sthosvd::sthosvd_with_info;
        let x = Tensor::<f64>::from_fn(&[8, 7, 6], |i| {
            let mut z = (i[0] * 71 + i[1] * 13 + i[2]) as u64;
            z = z.wrapping_mul(0x9E3779B97F4A7C15);
            let noise = ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            10f64.powf(-(i[0] as f64)) + 1e-3 * noise
        });
        let out = sthosvd_with_info(&x, &SthosvdConfig::with_tolerance(1e-2)).unwrap();
        let exact = out.tucker.relative_error(&x).to_f64();
        let via_core = out.tucker.relative_error_via_core(out.norm_x).to_f64();
        assert!((exact - via_core).abs() < 1e-10, "exact {exact} vs identity {via_core}");
    }

    #[test]
    fn compression_ratio_counts_parameters() {
        let (tk, _) = rank1_tucker();
        // 12 elements vs 1 (core) + 3 + 4 (factors) = 8.
        assert!((tk.compression_ratio() - 12.0 / 8.0).abs() < 1e-12);
        assert_eq!(tk.num_parameters(), 8);
    }
}
