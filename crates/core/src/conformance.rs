//! Cost-model conformance checking: compare the paper's analytic per-mode
//! flop and communication-word formulas (§3.5, eqs. 9–11) against the
//! *measured* per-phase totals of a simulated run (DESIGN.md §11).
//!
//! Where [`crate::model::predict`] turns the formulas into modeled seconds
//! (for machine sizes the host cannot run), this module evaluates the same
//! formulas as raw *counts* — flops, words, messages — and checks them
//! against what the runtime actually charged, phase by phase. A passing
//! report is evidence that the simulator's operation-by-operation charging
//! and the closed-form model agree; a failing one localizes the divergence
//! to a mode and a quantity.
//!
//! The analytic counts assume every block split is even (`P_n | J_n` etc.);
//! the configured tolerance absorbs the remainder terms of uneven splits.
//! On an even configuration the formulas are exact and the check passes at
//! tolerances as tight as 1e-9.
//!
//! Measured values are drawn from the per-mode phase labels the parallel
//! driver emits (`Gram#n`/`LQ#n`, `EVD#n`/`SVD#n`, `TTM#n`); parent phases
//! include their nested children (redistribution, all-reduce, TSQR tree),
//! so the three labels cover each mode's full cost.

use crate::config::SvdMethod;
use crate::model::{evd_flops, svd_flops};
use tucker_dtensor::{sketch_cols, sketch_qr_flops, slab_exchange_counts, ReductionTree};
use tucker_linalg::randomized::{resolve_sketch_rows, sketch_block_count, RandomizedSvdConfig};
use tucker_mpisim::{PhaseStat, RankStats};

/// Everything the analytic side needs to know about the run being checked.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Global tensor dimensions.
    pub dims: Vec<usize>,
    /// Measured retained ranks per mode (the truncation outcome).
    pub ranks: Vec<usize>,
    /// Processor grid dimensions.
    pub grid: Vec<usize>,
    /// Resolved mode processing order.
    pub order: Vec<usize>,
    /// SVD algorithm of the run.
    pub method: SvdMethod,
    /// TSQR reduction tree (QR method only).
    pub tree: ReductionTree,
    /// Bytes per scalar of the working precision (4 or 8).
    pub bytes: usize,
    /// Sketch parameters (randomized / sketched-Gram methods only).
    pub randomized: RandomizedSvdConfig,
    /// Maximum relative deviation for a mode to pass.
    pub tolerance: f64,
}

/// Predicted-vs-measured comparison for one mode.
#[derive(Clone, Copy, Debug)]
pub struct ModeCheck {
    /// Mode index.
    pub mode: usize,
    /// Analytic flop count, summed over all ranks.
    pub flops_predicted: f64,
    /// Measured flop charges for this mode's phases, summed over all ranks.
    pub flops_measured: f64,
    /// `|measured − predicted| / max(predicted, 1)`.
    pub flops_rel_dev: f64,
    /// Analytic communication volume in bytes, summed over all ranks.
    pub bytes_predicted: f64,
    /// Measured bytes sent in this mode's phases, summed over all ranks.
    pub bytes_measured: f64,
    /// `|measured − predicted| / max(predicted, 1)`.
    pub bytes_rel_dev: f64,
    /// Analytic message count (informational; not gated).
    pub msgs_predicted: u64,
    /// Measured message count (informational; not gated).
    pub msgs_measured: u64,
    /// Flop and byte deviations both within tolerance.
    pub pass: bool,
}

/// Full conformance report.
#[derive(Clone, Debug)]
pub struct ModelCheckReport {
    /// Per-mode comparisons, in processing order.
    pub per_mode: Vec<ModeCheck>,
    /// Tolerance the per-mode checks were gated on.
    pub tolerance: f64,
    /// Every mode passed.
    pub pass: bool,
}

impl ModelCheckReport {
    /// Human-readable table, one row per mode.
    pub fn table(&self) -> String {
        let mut out = format!(
            "model conformance (tolerance {:.1e}):\n  {:<5} {:>14} {:>14} {:>8}  {:>14} {:>14} {:>8}  {:>7} {:>7}  {}\n",
            self.tolerance,
            "mode",
            "flops pred",
            "flops meas",
            "dev",
            "bytes pred",
            "bytes meas",
            "dev",
            "msg prd",
            "msg mea",
            "status",
        );
        for m in &self.per_mode {
            out.push_str(&format!(
                "  {:<5} {:>14.4e} {:>14.4e} {:>8.1e}  {:>14.4e} {:>14.4e} {:>8.1e}  {:>7} {:>7}  {}\n",
                m.mode,
                m.flops_predicted,
                m.flops_measured,
                m.flops_rel_dev,
                m.bytes_predicted,
                m.bytes_measured,
                m.bytes_rel_dev,
                m.msgs_predicted,
                m.msgs_measured,
                if m.pass { "ok" } else { "FAIL" },
            ));
        }
        out.push_str(&format!("  overall: {}\n", if self.pass { "pass" } else { "FAIL" }));
        out
    }

    /// Deterministic JSON object mirroring the table.
    pub fn to_json(&self) -> String {
        let modes: Vec<String> = self
            .per_mode
            .iter()
            .map(|m| {
                format!(
                    "{{\"mode\":{},\"flops_predicted\":{},\"flops_measured\":{},\"flops_rel_dev\":{},\"bytes_predicted\":{},\"bytes_measured\":{},\"bytes_rel_dev\":{},\"msgs_predicted\":{},\"msgs_measured\":{},\"pass\":{}}}",
                    m.mode,
                    jf(m.flops_predicted),
                    jf(m.flops_measured),
                    jf(m.flops_rel_dev),
                    jf(m.bytes_predicted),
                    jf(m.bytes_measured),
                    jf(m.bytes_rel_dev),
                    m.msgs_predicted,
                    m.msgs_measured,
                    m.pass,
                )
            })
            .collect();
        format!(
            "{{\"tolerance\":{},\"pass\":{},\"per_mode\":[{}]}}",
            jf(self.tolerance),
            self.pass,
            modes.join(",")
        )
    }
}

/// JSON number rendering (shortest round-trip; non-finite → null).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// LQ flop count of an `m x n` factorization — mirror of the charge in
/// `tucker_dtensor::lq`.
fn lq_flops(m: f64, n: f64) -> f64 {
    if n >= m {
        2.0 * m * m * n - 2.0 / 3.0 * m * m * m
    } else {
        2.0 * n * n * m - 2.0 / 3.0 * n * n * n
    }
}

fn prev_power_of_two(p: usize) -> usize {
    let mut f = 1;
    while f * 2 <= p {
        f *= 2;
    }
    f
}

/// Analytic per-mode counts, all totals over the whole machine.
#[derive(Clone, Copy, Debug, Default)]
struct Predicted {
    flops: f64,
    bytes: f64,
    msgs: u64,
}

/// Evaluate the per-mode analytic counts for `cfg`, in processing order.
fn predict_counts(cfg: &CheckConfig) -> Vec<(usize, Predicted)> {
    let p: usize = cfg.grid.iter().product();
    let pf = p as f64;
    let w = cfg.bytes as f64;
    let mut j: Vec<f64> = cfg.dims.iter().map(|&d| d as f64).collect();
    // Integer shadow of `j` for the sketch geometry helpers.
    let mut ju: Vec<usize> = cfg.dims.clone();
    let mut out = Vec::with_capacity(cfg.order.len());

    for &n in &cfg.order {
        let m = j[n];
        let jstar: f64 = j.iter().product();
        let p_n = cfg.grid[n] as f64;
        let r_n = cfg.ranks[n] as f64;
        let tri = m * (m + 1.0) / 2.0; // packed triangle words
        let mut pr = Predicted::default();

        // Fiber redistribution (skipped when P_n = 1): every rank sends
        // (P_n−1)/P_n of its J*/P local words. The sketch methods do a slab
        // all-to-all instead, predicted in their own arms below.
        let fiber_methods =
            !matches!(cfg.method, SvdMethod::Randomized | SvdMethod::SketchedGram);
        if fiber_methods && cfg.grid[n] > 1 {
            pr.bytes += jstar * (p_n - 1.0) / p_n * w;
            pr.msgs += (p * (cfg.grid[n] - 1)) as u64;
        }

        match cfg.method {
            SvdMethod::Gram | SvdMethod::GramMixed => {
                // Local syrk totals J_n·J* raw flops machine-wide (the
                // column counts tile the unfolding exactly, even unevenly).
                pr.flops += m * jstar;
                // Binomial reduce + broadcast of the J_n² Gram matrix:
                // P−1 messages each way; the reduce merges charge one flop
                // per element per merge. The mixed method reduces in f64.
                let gw = if cfg.method == SvdMethod::GramMixed { 8.0 } else { w };
                pr.flops += (pf - 1.0) * m * m;
                pr.bytes += 2.0 * (pf - 1.0) * m * m * gw;
                pr.msgs += 2 * (p as u64 - 1);
                // Redundant EVD on every rank.
                pr.flops += pf * evd_flops(m as usize);
            }
            SvdMethod::Qr => {
                // Local LQ of the J_n × J*/(J_n·P) stripe on every rank.
                pr.flops += pf * lq_flops(m, jstar / (m * pf));
                // TSQR tree over packed triangles on the world comm.
                let f = prev_power_of_two(p);
                let (tree_msgs, merges) = match cfg.tree {
                    ReductionTree::Butterfly => {
                        let lv = f.trailing_zeros() as u64;
                        let tail = (p - f) as u64;
                        (f as u64 * lv + 2 * tail, f as u64 * lv + tail)
                    }
                    ReductionTree::Binomial => ((2 * (p - 1)) as u64, (p - 1) as u64),
                };
                pr.msgs += tree_msgs;
                pr.bytes += tree_msgs as f64 * tri * w;
                pr.flops += merges as f64 * 2.0 * m.powi(3);
                // Redundant SVD of the triangle on every rank.
                pr.flops += pf * svd_flops(m as usize);
            }
            SvdMethod::Randomized => {
                // Distributed randomized range finder (dtensor::sketch).
                // Every term mirrors a closed-form charge in
                // `parallel_sketch_svd`, so the prediction is exact.
                let mu = ju[n];
                let colsu: usize = ju.iter().product::<usize>() / mu;
                let colsf = colsu as f64;
                let k = sketch_cols(cfg.ranks[n], cfg.randomized.oversampling, mu, colsu) as f64;
                let q = cfg.randomized.power_iterations as f64;
                let nv = sketch_block_count(colsu) as f64;

                // Slab all-to-all of the unfolding into whole-block slabs.
                let (slab_words, slab_msgs) = slab_exchange_counts(&ju, &cfg.grid, n);
                pr.bytes += slab_words * w;
                pr.msgs += slab_msgs;

                // Sketch GEMM Y = A·Ω: the virtual blocks tile the columns
                // exactly, so 2·J_n·J*·k machine-wide — and 4·J_n·J*·k per
                // power iteration (two GEMMs through each block).
                pr.flops += 2.0 * m * colsf * k;
                pr.flops += q * 4.0 * m * colsf * k;
                // Projection B = QᵀA (2·k·J_n·J*) plus the per-block syrk of
                // B (k²·J*).
                pr.flops += 2.0 * k * m * colsf + k * k * colsf;
                // Redundant per-rank work: (q+1) sketch QRs, folds of all nv
                // partials ((q+1) of J_n×k, one of k×k), the k×k EVD, and the
                // lift U = Q·U_H.
                pr.flops += pf * (q + 1.0) * sketch_qr_flops(m, k);
                pr.flops += pf * (nv - 1.0) * ((q + 1.0) * m * k + k * k);
                pr.flops += pf * 9.0 * k * k * k;
                pr.flops += pf * 2.0 * m * k * k;
                // (q+2) ring allgathers of the per-block partials: machine-
                // wide each moves (P−1) copies of the nv concatenated blocks.
                pr.bytes += (pf - 1.0) * nv * ((q + 1.0) * m * k + k * k) * w;
                pr.msgs += (q as u64 + 2) * (p * (p - 1)) as u64;
            }
            SvdMethod::SketchedGram => {
                // Sampled-column Gram estimate: slab exchange, one syrk over
                // the s sampled columns (each owned by exactly one rank),
                // then the same allreduce + redundant EVD as the Gram path.
                let mu = ju[n];
                let colsu: usize = ju.iter().product::<usize>() / mu;
                let s = resolve_sketch_rows(cfg.randomized.sketch_rows, mu, colsu) as f64;
                let (slab_words, slab_msgs) = slab_exchange_counts(&ju, &cfg.grid, n);
                pr.bytes += slab_words * w;
                pr.msgs += slab_msgs;
                pr.flops += m * m * s;
                pr.flops += (pf - 1.0) * m * m;
                pr.bytes += 2.0 * (pf - 1.0) * m * m * w;
                pr.msgs += 2 * (p as u64 - 1);
                pr.flops += pf * evd_flops(m as usize);
            }
        }

        // Truncation TTM: local multiply on every rank (exact even for
        // uneven splits), plus the fiber reduce-scatter.
        pr.flops += 2.0 * r_n * jstar;
        if cfg.grid[n] > 1 {
            let scatter_words = r_n * jstar * (p_n - 1.0) / m;
            pr.bytes += scatter_words * w;
            pr.flops += scatter_words; // local chunk summation
            pr.msgs += (p * (cfg.grid[n] - 1)) as u64;
        }

        out.push((n, pr));
        j[n] = r_n;
        ju[n] = cfg.ranks[n];
    }
    out
}

/// Sum one mode's measured phase stats over all ranks.
fn measured_for_mode(stats: &[RankStats], method: SvdMethod, n: usize) -> PhaseStat {
    let (factor, small) = match method {
        SvdMethod::Qr => (format!("LQ#{n}"), format!("SVD#{n}")),
        // The randomized driver does everything (redistribution, sketch,
        // projected EVD, lift) under the one Sketch#n phase; the empty
        // second label matches no phase.
        SvdMethod::Randomized => (format!("Sketch#{n}"), String::new()),
        _ => (format!("Gram#{n}"), format!("EVD#{n}")),
    };
    let labels = [factor, small, format!("TTM#{n}")];
    let mut acc = PhaseStat::default();
    for rs in stats {
        for label in &labels {
            if let Some(p) = rs.phase(label) {
                acc.add(p);
            }
        }
    }
    acc
}

/// Check the measured per-mode totals of a run against the analytic model.
pub fn check_model(cfg: &CheckConfig, stats: &[RankStats]) -> ModelCheckReport {
    assert_eq!(cfg.dims.len(), cfg.ranks.len(), "check_model: dims/ranks length mismatch");
    assert_eq!(cfg.dims.len(), cfg.grid.len(), "check_model: dims/grid length mismatch");
    let rel = |meas: f64, pred: f64| (meas - pred).abs() / pred.max(1.0);
    let per_mode: Vec<ModeCheck> = predict_counts(cfg)
        .into_iter()
        .map(|(n, pr)| {
            let meas = measured_for_mode(stats, cfg.method, n);
            let flops_rel_dev = rel(meas.flops, pr.flops);
            let bytes_rel_dev = rel(meas.bytes_sent as f64, pr.bytes);
            ModeCheck {
                mode: n,
                flops_predicted: pr.flops,
                flops_measured: meas.flops,
                flops_rel_dev,
                bytes_predicted: pr.bytes,
                bytes_measured: meas.bytes_sent as f64,
                bytes_rel_dev,
                msgs_predicted: pr.msgs,
                msgs_measured: meas.msgs,
                pass: flops_rel_dev <= cfg.tolerance && bytes_rel_dev <= cfg.tolerance,
            }
        })
        .collect();
    let pass = per_mode.iter().all(|m| m.pass);
    ModelCheckReport { per_mode, tolerance: cfg.tolerance, pass }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SthosvdConfig;
    use crate::parallel::sthosvd_parallel;
    use tucker_dtensor::{DistTensor, ProcessorGrid};
    use tucker_mpisim::{CostModel, Simulator};
    use tucker_tensor::Tensor;

    fn test_tensor(dims: &[usize]) -> Tensor<f64> {
        Tensor::from_fn(dims, |i| {
            let mut v = 0.2;
            for (k, &x) in i.iter().enumerate() {
                v += ((x + 1) * (k + 2)) as f64 * 0.13;
            }
            v.sin()
        })
    }

    fn run_and_check(method: SvdMethod, tree: ReductionTree, tolerance: f64) -> ModelCheckReport {
        let dims = [8usize, 8, 8];
        let grid = [2usize, 2, 2];
        let ranks = [4usize, 4, 4];
        let x = test_tensor(&dims);
        let cfg = SthosvdConfig::with_ranks(ranks.to_vec()).method(method).tree(tree);
        let out = Simulator::new(8).with_cost(CostModel::zero()).run(|ctx| {
            let dt = DistTensor::scatter_from(&x, &ProcessorGrid::new(&grid), ctx.rank());
            sthosvd_parallel(ctx, &dt, &cfg).unwrap().ranks()
        });
        let measured_ranks = out.results[0].clone();
        check_model(
            &CheckConfig {
                dims: dims.to_vec(),
                ranks: measured_ranks,
                grid: grid.to_vec(),
                order: vec![0, 1, 2],
                method,
                tree,
                bytes: 8,
                randomized: RandomizedSvdConfig::default(),
                tolerance,
            },
            &out.stats,
        )
    }

    #[test]
    fn gram_even_grid_is_exact() {
        let r = run_and_check(SvdMethod::Gram, ReductionTree::Butterfly, 1e-9);
        assert!(r.pass, "{}", r.table());
        for m in &r.per_mode {
            assert!(m.flops_predicted > 0.0 && m.bytes_predicted > 0.0, "mode {}", m.mode);
            assert_eq!(m.msgs_predicted, m.msgs_measured, "mode {}", m.mode);
        }
    }

    #[test]
    fn qr_butterfly_even_grid_is_exact() {
        let r = run_and_check(SvdMethod::Qr, ReductionTree::Butterfly, 1e-9);
        assert!(r.pass, "{}", r.table());
        for m in &r.per_mode {
            assert_eq!(m.msgs_predicted, m.msgs_measured, "mode {}", m.mode);
        }
    }

    #[test]
    fn qr_binomial_even_grid_is_exact() {
        let r = run_and_check(SvdMethod::Qr, ReductionTree::Binomial, 1e-9);
        assert!(r.pass, "{}", r.table());
    }

    #[test]
    fn randomized_even_grid_is_exact() {
        let r = run_and_check(SvdMethod::Randomized, ReductionTree::Butterfly, 1e-9);
        assert!(r.pass, "{}", r.table());
        for m in &r.per_mode {
            assert!(m.flops_predicted > 0.0, "mode {}", m.mode);
            assert_eq!(m.msgs_predicted, m.msgs_measured, "mode {}", m.mode);
        }
    }

    #[test]
    fn sketched_gram_even_grid_is_exact() {
        let r = run_and_check(SvdMethod::SketchedGram, ReductionTree::Butterfly, 1e-9);
        assert!(r.pass, "{}", r.table());
        for m in &r.per_mode {
            assert!(m.flops_predicted > 0.0 && m.bytes_predicted > 0.0, "mode {}", m.mode);
            assert_eq!(m.msgs_predicted, m.msgs_measured, "mode {}", m.mode);
        }
    }

    #[test]
    fn wrong_grid_fails_the_check() {
        // Predict for a 4-rank grid but measure an 8-rank run: the check
        // must localize the mismatch rather than pass vacuously.
        let dims = [8usize, 8, 8];
        let x = test_tensor(&dims);
        let cfg = SthosvdConfig::with_ranks(vec![4, 4, 4]).method(SvdMethod::Gram);
        let out = Simulator::new(8).with_cost(CostModel::zero()).run(|ctx| {
            let dt = DistTensor::scatter_from(&x, &ProcessorGrid::new(&[2, 2, 2]), ctx.rank());
            sthosvd_parallel(ctx, &dt, &cfg).unwrap().ranks()
        });
        let r = check_model(
            &CheckConfig {
                dims: dims.to_vec(),
                ranks: out.results[0].clone(),
                grid: vec![2, 2, 1],
                order: vec![0, 1, 2],
                method: SvdMethod::Gram,
                tree: ReductionTree::Butterfly,
                bytes: 8,
                randomized: RandomizedSvdConfig::default(),
                tolerance: 1e-3,
            },
            &out.stats,
        );
        assert!(!r.pass, "{}", r.table());
    }

    #[test]
    fn report_renders_table_and_json() {
        let r = run_and_check(SvdMethod::Gram, ReductionTree::Butterfly, 1e-9);
        let t = r.table();
        assert!(t.contains("model conformance"));
        assert!(t.contains("overall: pass"));
        let j = r.to_json();
        assert!(j.contains("\"pass\":true"));
        assert!(j.contains("\"per_mode\":["));
    }
}
