//! Rank selection from a singular value profile (Alg. 1 line 5):
//! `R_n = min { R : Σ_{i>R} σ_i² ≤ ε²‖X‖²/N }`.
//!
//! This is where the numerical quality of the SVD bites: if the computed
//! tail singular values are roundoff noise at level `‖A‖·√ε` (Gram) or
//! `‖A‖·ε` (QR), the tail sum never drops below a tighter threshold and the
//! algorithm returns full rank — the "fails to compress at all" behaviour of
//! Gram-single at `ε = 10⁻⁴` in the paper's Tab. 2.

use tucker_linalg::Scalar;

/// Smallest `R` such that the tail `Σ_{i≥R} σ_i²` is at most `threshold_sq`.
///
/// `sigma` must be sorted descending (as returned by both SVD paths).
/// Returns a value in `1..=sigma.len()` — at least one direction is always
/// kept, matching TuckerMPI.
pub fn choose_rank<T: Scalar>(sigma: &[T], threshold_sq: T) -> usize {
    let n = sigma.len();
    if n == 0 {
        return 0;
    }
    // Walk from the tail, accumulating σ_i² until the budget is exceeded.
    let mut tail = T::ZERO;
    for r in (1..=n).rev() {
        let s = sigma[r - 1];
        let next = tail + s * s;
        if next > threshold_sq {
            return r.min(n);
        }
        tail = next;
    }
    1
}

/// Per-mode threshold for relative tolerance `eps`: `ε²‖X‖²/N`.
pub fn mode_threshold<T: Scalar>(eps: f64, norm_x: T, num_modes: usize) -> T {
    let e = T::from_f64(eps);
    e * e * norm_x * norm_x / T::from_usize(num_modes)
}

/// Estimated relative approximation error from the per-mode discarded tails:
/// `√(Σ_n Σ_{i≥R_n} σ_{n,i}²) / ‖X‖` — the error estimate ST-HOSVD reports
/// without reconstructing (guaranteed ≤ ε in exact arithmetic).
pub fn estimated_error<T: Scalar>(tails_sq: &[T], norm_x: T) -> T {
    let total: T = tails_sq.iter().copied().sum();
    total.max(T::ZERO).sqrt() / norm_x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_everything_when_threshold_zero() {
        let s = [3.0f64, 2.0, 1.0];
        assert_eq!(choose_rank(&s, 0.0), 3);
    }

    #[test]
    fn drops_exact_zero_tail_at_zero_threshold() {
        let s = [3.0f64, 2.0, 0.0, 0.0];
        assert_eq!(choose_rank(&s, 0.0), 2);
    }

    #[test]
    fn truncates_small_tail() {
        let s = [10.0f64, 1.0, 0.1, 0.01];
        // Tail budget 0.02: keeps dropping 0.01² (=1e-4) and 0.1² (=1e-2),
        // total 0.0101 ≤ 0.02; dropping 1² too would exceed.
        assert_eq!(choose_rank(&s, 0.02), 2);
    }

    #[test]
    fn keeps_at_least_one() {
        let s = [1.0f64, 0.5];
        assert_eq!(choose_rank(&s, 1e9), 1);
    }

    #[test]
    fn exact_boundary_is_inclusive() {
        let s = [2.0f64, 1.0];
        // threshold == 1.0 = σ_2² exactly: dropping σ_2 is allowed.
        assert_eq!(choose_rank(&s, 1.0), 1);
    }

    #[test]
    fn noise_floor_blocks_compression() {
        // Simulates Gram-single: true tail decays but computed values sit at
        // a noise floor of 1e-4 — a 1e-8 tolerance finds no valid cut.
        let mut s = vec![1.0f64];
        s.extend(std::iter::repeat_n(1e-4, 49));
        let r = choose_rank(&s, 1e-16);
        assert_eq!(r, 50, "noise floor must force full rank");
    }

    #[test]
    fn mode_threshold_formula() {
        let t = mode_threshold::<f64>(1e-2, 10.0, 4);
        assert!((t - 1e-4 * 100.0 / 4.0).abs() < 1e-15);
    }

    #[test]
    fn estimated_error_combines_tails() {
        let e = estimated_error(&[0.04f64, 0.05], 10.0);
        assert!((e - 0.3 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn single_precision_rank_choice() {
        let s = [1.0f32, 1e-3, 1e-6];
        // Budget 1e-5 covers both tail values (1e-6 + 1e-12).
        assert_eq!(choose_rank(&s, 1e-5), 1);
        // Budget 1e-7 covers only σ₃² = 1e-12.
        assert_eq!(choose_rank(&s, 1e-7), 2);
        assert_eq!(choose_rank(&s, 1e-13), 3);
    }
}
