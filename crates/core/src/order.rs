//! Mode-order optimization.
//!
//! "If all dimensions and reduced ranks are known at the start of the
//! algorithm, the modes can be ordered to minimize computation or other
//! metrics" (paper §4.2.3, citing [6]). When the ranks *are* known (fixed-
//! rank compression, or a rerun after a tolerance-driven pilot), this module
//! searches mode orderings against the §3.5 cost model and returns the
//! cheapest; the paper itself only compares forward/backward because its
//! ranks are tolerance-driven.

use crate::config::{ModeOrder, SvdMethod};
use crate::model::{predict, ModelConfig};
use tucker_mpisim::CostModel;

/// Search space for the optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderSearch {
    /// All `N!` permutations (fine for `N ≤ 6`).
    Exhaustive,
    /// Greedy: repeatedly pick the mode whose processing is cheapest given
    /// the current (partially truncated) dimensions.
    Greedy,
}

/// Find a good processing order for the given problem. Returns the order and
/// its modeled time.
pub fn optimize_mode_order(
    dims: &[usize],
    ranks: &[usize],
    grid: &[usize],
    method: SvdMethod,
    bytes: usize,
    cost: CostModel,
    search: OrderSearch,
) -> (ModeOrder, f64) {
    let n = dims.len();
    assert!(n >= 1 && ranks.len() == n && grid.len() == n);
    let eval = |order: &[usize]| {
        predict(&ModelConfig {
            dims: dims.to_vec(),
            ranks: ranks.to_vec(),
            grid: grid.to_vec(),
            order: order.to_vec(),
            method,
            bytes,
            cost,
        })
        .total
    };
    match search {
        OrderSearch::Exhaustive => {
            let mut best: Option<(Vec<usize>, f64)> = None;
            permute(&mut (0..n).collect::<Vec<_>>(), 0, &mut |perm| {
                let t = eval(perm);
                if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                    best = Some((perm.to_vec(), t));
                }
            });
            let (order, t) = best.expect("at least one permutation");
            (ModeOrder::Custom(order), t)
        }
        OrderSearch::Greedy => {
            // Pick, at each step, the unprocessed mode with the largest
            // dimension reduction ratio I_n/R_n (cheapening all later modes
            // the most) — the standard heuristic from [6].
            let mut remaining: Vec<usize> = (0..n).collect();
            let mut order = Vec::with_capacity(n);
            while !remaining.is_empty() {
                let (pos, _) = remaining
                    .iter()
                    .enumerate()
                    .map(|(p, &m)| (p, dims[m] as f64 / ranks[m] as f64))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                order.push(remaining.remove(pos));
            }
            let t = eval(&order);
            (ModeOrder::Custom(order), t)
        }
    }
}

fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_prefers_heavy_truncation_first() {
        // Mode 2 truncates 100 -> 2: processing it first shrinks everything.
        let dims = [40, 40, 100];
        let ranks = [20, 20, 2];
        let (order, t) = optimize_mode_order(
            &dims,
            &ranks,
            &[1, 1, 1],
            SvdMethod::Qr,
            8,
            CostModel::andes(),
            OrderSearch::Exhaustive,
        );
        let ModeOrder::Custom(o) = &order else { panic!() };
        assert_eq!(o[0], 2, "expected mode 2 first, got {o:?}");
        assert!(t > 0.0);
    }

    #[test]
    fn greedy_matches_exhaustive_on_simple_cases() {
        let dims = [32, 64, 16];
        let ranks = [16, 4, 8];
        let (eo, et) = optimize_mode_order(
            &dims, &ranks, &[1, 1, 1], SvdMethod::Gram, 8, CostModel::andes(), OrderSearch::Exhaustive,
        );
        let (go, gt) = optimize_mode_order(
            &dims, &ranks, &[1, 1, 1], SvdMethod::Gram, 8, CostModel::andes(), OrderSearch::Greedy,
        );
        // Greedy is near-optimal here.
        assert!(gt <= et * 1.5, "greedy {gt} vs exhaustive {et} ({go:?} vs {eo:?})");
    }

    #[test]
    fn optimized_beats_worst_order() {
        let dims = [60, 20, 20, 20];
        let ranks = [2, 10, 10, 10];
        let eval = |order: Vec<usize>| {
            predict(&ModelConfig {
                dims: dims.to_vec(),
                ranks: ranks.to_vec(),
                grid: vec![1; 4],
                order,
                method: SvdMethod::Qr,
                bytes: 8,
                cost: CostModel::andes(),
            })
            .total
        };
        let (_, best) = optimize_mode_order(
            &dims, &ranks, &[1, 1, 1, 1], SvdMethod::Qr, 8, CostModel::andes(), OrderSearch::Exhaustive,
        );
        // Best must beat the worst permutation (and match the brute-force min).
        let mut worst = 0.0f64;
        let mut min = f64::MAX;
        let perms = [
            vec![0usize, 1, 2, 3], vec![1, 2, 3, 0], vec![3, 2, 1, 0], vec![0, 3, 1, 2],
            vec![2, 0, 3, 1], vec![1, 0, 2, 3],
        ];
        for p in perms {
            let t = eval(p);
            worst = worst.max(t);
            min = min.min(t);
        }
        assert!(best <= min * (1.0 + 1e-12), "optimizer best {best} worse than sampled min {min}");
        assert!(best < worst, "no spread found: best {best}, worst {worst}");
    }

    #[test]
    fn single_mode_trivial() {
        let (order, _) = optimize_mode_order(
            &[10], &[2], &[1], SvdMethod::Qr, 4, CostModel::andes(), OrderSearch::Exhaustive,
        );
        assert_eq!(order, ModeOrder::Custom(vec![0]));
    }
}
