//! Tiny dependency-free argument parsing for the `tucker` CLI.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// First non-flag token.
    pub command: String,
    /// Remaining positional tokens.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare flags map to an empty string.
    pub options: BTreeMap<String, String>,
}

/// Flags that take no value.
const BARE_FLAGS: &[&str] =
    &["f32", "help", "json", "model-check", "no-cache", "quick", "resume", "validate", "verify"];

/// Parse a token stream (without the program name).
pub fn parse(tokens: &[String]) -> Result<Args, String> {
    let mut it = tokens.iter().peekable();
    let command = it.next().cloned().ok_or("missing subcommand; try `tucker help`")?;
    let mut positional = Vec::new();
    let mut options = BTreeMap::new();
    while let Some(tok) = it.next() {
        if let Some(key) = tok.strip_prefix("--") {
            if BARE_FLAGS.contains(&key) {
                options.insert(key.to_string(), String::new());
            } else {
                let val = it
                    .next()
                    .ok_or_else(|| format!("option --{key} expects a value"))?;
                options.insert(key.to_string(), val.clone());
            }
        } else {
            positional.push(tok.clone());
        }
    }
    Ok(Args { command, positional, options })
}

impl Args {
    /// Positional argument `i`, or an error naming it.
    pub fn pos(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional.get(i).map(|s| s.as_str()).ok_or_else(|| format!("missing <{name}>"))
    }

    /// Option value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Bare-flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

/// Parse `"40x40x33x40"` or `"40,40,33,40"` into dimensions.
pub fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let parts: Vec<&str> = s.split(['x', 'X', ',']).collect();
    let mut dims = Vec::with_capacity(parts.len());
    for p in parts {
        let d: usize = p.trim().parse().map_err(|_| format!("bad dimension '{p}'"))?;
        if d == 0 {
            return Err("dimensions must be positive".into());
        }
        dims.push(d);
    }
    if dims.is_empty() {
        return Err("empty dimension list".into());
    }
    Ok(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_positionals_and_options() {
        let a = parse(&toks("compress in.tns out.tkr --tol 1e-4 --method qr")).unwrap();
        assert_eq!(a.command, "compress");
        assert_eq!(a.positional, vec!["in.tns", "out.tkr"]);
        assert_eq!(a.opt("tol"), Some("1e-4"));
        assert_eq!(a.opt("method"), Some("qr"));
    }

    #[test]
    fn bare_flags() {
        let a = parse(&toks("generate out.tns --kind hcci --f32")).unwrap();
        assert!(a.flag("f32"));
        assert_eq!(a.opt("kind"), Some("hcci"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&toks("compress x --tol")).is_err());
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn dims_formats() {
        assert_eq!(parse_dims("40x40x33x40").unwrap(), vec![40, 40, 33, 40]);
        assert_eq!(parse_dims("3,4,5").unwrap(), vec![3, 4, 5]);
        assert!(parse_dims("3x0x2").is_err());
        assert!(parse_dims("abc").is_err());
    }

    #[test]
    fn positional_accessor() {
        let a = parse(&toks("info file.tns")).unwrap();
        assert_eq!(a.pos(0, "file").unwrap(), "file.tns");
        assert!(a.pos(1, "missing").is_err());
    }
}
