//! Subcommand implementations for the `tucker` CLI.

use crate::args::{parse_dims, Args};
use std::time::{Duration, Instant};
use tucker_core::tucker_io::{
    read_tucker_any, read_tucker_header as read_tucker_hdr, write_tucker, AnyTucker,
};
use tucker_core::{
    check_model, optimize_mode_order, sthosvd_parallel, sthosvd_parallel_checkpointed,
    sthosvd_with_info, CheckConfig, CheckpointOptions, ModeOrder, ModelCheckReport, OrderSearch,
    SthosvdConfig, SvdMethod, TuckerTensor,
};
use tucker_data::{hcci_surrogate, hash_noise, sp_surrogate, video_surrogate};
use tucker_dtensor::{DistTensor, ProcessorGrid};
use tucker_linalg::{RandomizedSvdConfig, Scalar};
use tucker_mpisim::{
    chrome_trace_json, text_timeline, CostModel, FaultPlan, MetricsRegistry, Simulator,
    ThreadTopology, TraceConfig,
};
use tucker_serve::{
    evaluate_slo, run_failover_bench, run_serve_bench, run_tier_workload, AnyStore, Engine,
    EngineConfig, ObsConfig, OrderPolicy, Query, SloPolicy, TuckerStore,
};
use tucker_tensor::io::{read_tensor, read_tensor_header, write_tensor, StoredPrecision, TensorChunks};
use tucker_tensor::{hyperslab, FrobAccumulator, Tensor};

/// Usage text shown on errors and `tucker help`.
pub const USAGE: &str = "\
usage:
  tucker generate <out.tns> --kind hcci|sp|video|random --dims 40x40x33x40 [--seed N] [--f32]
  tucker compress <in.tns> <out.tkr> [--tol 1e-4 | --ranks 5x5x3x5]
                  [--svd qr|gram|gram-mixed|randomized|sketched-gram]
                  [--oversample P --power Q --sketch-rows S --sketch-seed N]
                  [--order forward|backward|auto]
                  (--order auto searches mode orderings against the cost
                   model; it requires --ranks)
                  (--svd randomized needs --ranks; --oversample/--power tune
                   its sketch, --sketch-rows the sketched-gram sample count,
                   0 = auto; --method is an alias of --svd)
  tucker decompress <in.tkr> <out.tns>
  tucker query <store.tkr> --slab SPEC [--out slab.tns] [--no-cache]
                  [--order-policy exact|cost] [--verify]
                  (SPEC is one selector per mode, comma-separated:
                   '*' all, '3' index, '0:8' range, '2:10:2' strided;
                   --verify checks the result against a full reconstruction)
  tucker shard <in.tkr> <out-dir> --shards N
                  (splits a store into N mode-0 shards: shard0000.tkr … plus
                   a TKSM manifest, for the replicated serving tier)
  tucker serve-bench [--quick] [--out bench.json]
                  [--shards N --replicas K [--inject SPEC]] [--trace DIR]
                  (--shards switches to the replicated-tier benchmark:
                   healthy/failover/overload runs over N shards x K replicas;
                   --inject arms an mpisim fault plan against world ranks,
                   e.g. 'crash:rank=1,op=2' or 'flaky:0:0..40:5')
                  (--trace runs one fully observed tier workload instead and
                   writes DIR/trace.json (merged Chrome trace), DIR/serve.log
                   (serve-log-v1 JSON lines), DIR/slo.json, and
                   DIR/critical_path.txt)
  tucker slo-report [--quick] [--shards N --replicas K] [--inject SPEC]
                  [--slo-p50-ms X --slo-p99-ms X --slo-error-rate X
                   --slo-recovery-ms X] [--json] [--out report.json]
                  (evaluates per-tenant latency, error-rate, and
                   failover-recovery objectives over a deterministic tier
                   workload; prints a table, or JSON with --json, and exits
                   nonzero naming the breached objectives)
  tucker simulate [in.tns] --grid 2x2x2 [--kind hcci|sp|video|random --dims 32x32x32 --seed N]
                  [--tol 1e-4 | --ranks 5x5x5] [--svd qr|gram|gram-mixed|randomized|sketched-gram]
                  [--oversample P --power Q --sketch-rows S --sketch-seed N]
                  [--order forward|backward|auto] [--trace out.json] [--timeline out.txt] [--validate]
                  [--inject SPEC] [--watchdog-ms N] [--checkpoint-dir DIR] [--resume]
                  [--threads N|auto] [--metrics out.json] [--model-check] [--model-tol 0.05]
                  (SPEC example: crash:rank=2,op=40;drop:rank=0,op=5,times=2)
                  (--threads caps rayon threads per simulated rank; 'auto'
                   splits the pool evenly across ranks)
                  (--metrics dumps the per-rank metrics registries as JSON;
                   --model-check compares measured per-mode flops/bytes to the
                   paper's analytic formulas and fails on deviation > --model-tol)
  tucker info <file.tns|file.tkr>
  tucker error <original.tns> <reconstruction.tns>
  tucker help";

/// Dispatch a parsed command line.
pub fn run(a: &Args) -> Result<(), String> {
    match a.command.as_str() {
        "generate" => generate(a),
        "compress" => compress(a),
        "decompress" => decompress(a),
        "query" => query_cmd(a),
        "shard" => shard_cmd(a),
        "serve-bench" => serve_bench_cmd(a),
        "slo-report" => slo_report_cmd(a),
        "simulate" => simulate(a),
        "info" => info(a),
        "error" => error_cmd(a),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

fn io_err(e: std::io::Error) -> String {
    e.to_string()
}

/// Parse the `--threads` value: an explicit per-rank thread count, or `auto`
/// to partition the process-wide rayon pool evenly across simulated ranks.
fn parse_threads(spec: &str) -> Result<ThreadTopology, String> {
    if spec == "auto" {
        return Ok(ThreadTopology::Partitioned);
    }
    match spec.parse::<usize>() {
        Ok(n) if n > 0 => Ok(ThreadTopology::PerRank(n)),
        _ => Err(format!("bad --threads '{spec}' (want a positive count or 'auto')")),
    }
}

/// Build a synthetic tensor of the given kind (`generate` and file-less
/// `simulate` share this).
fn synthetic_tensor(kind: &str, dims: &[usize], seed: u64) -> Result<Tensor<f64>, String> {
    match kind {
        "hcci" => {
            if dims.len() != 4 {
                return Err("hcci needs 4 modes".into());
            }
            Ok(hcci_surrogate(dims, seed))
        }
        "sp" => {
            if dims.len() != 5 {
                return Err("sp needs 5 modes".into());
            }
            Ok(sp_surrogate(dims, seed))
        }
        "video" => {
            if dims.len() != 4 {
                return Err("video needs 4 modes".into());
            }
            Ok(video_surrogate(dims, seed))
        }
        "random" => {
            let mut lin = 0usize;
            Ok(Tensor::from_fn(dims, |_| {
                lin += 1;
                hash_noise(seed, lin)
            }))
        }
        other => Err(format!("unknown --kind '{other}'")),
    }
}

fn generate(a: &Args) -> Result<(), String> {
    let out = a.pos(0, "out.tns")?;
    let kind = a.opt("kind").unwrap_or("random");
    let dims = parse_dims(a.opt("dims").ok_or("generate requires --dims")?)?;
    let seed: u64 = a.opt("seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    let x = synthetic_tensor(kind, &dims, seed)?;
    if a.flag("f32") {
        let x32: Tensor<f32> = x.cast();
        write_tensor(out, &x32).map_err(io_err)?;
    } else {
        write_tensor(out, &x).map_err(io_err)?;
    }
    println!("wrote {kind} tensor {dims:?} to {out}");
    Ok(())
}

/// Build the ST-HOSVD configuration. `dims` is the input tensor shape,
/// `grid` the processor grid (`None` for sequential runs, treated as all
/// ones), `bytes` the working scalar width — all three feed the cost model
/// when `--order auto` asks the optimizer to pick the mode order.
fn build_config(
    a: &Args,
    dims: &[usize],
    grid: Option<&[usize]>,
    bytes: usize,
) -> Result<SthosvdConfig, String> {
    let mut cfg = if let Some(r) = a.opt("ranks") {
        SthosvdConfig::with_ranks(parse_dims(r)?)
    } else {
        let tol: f64 = a
            .opt("tol")
            .unwrap_or("1e-4")
            .parse()
            .map_err(|_| "bad --tol")?;
        SthosvdConfig::with_tolerance(tol)
    };
    // `--svd` is the primary spelling; `--method` is kept as an alias.
    let method = match a.opt("svd").or_else(|| a.opt("method")).unwrap_or("qr") {
        "qr" => SvdMethod::Qr,
        "gram" => SvdMethod::Gram,
        "gram-mixed" => SvdMethod::GramMixed,
        "randomized" => SvdMethod::Randomized,
        "sketched-gram" => SvdMethod::SketchedGram,
        other => return Err(format!("unknown --svd '{other}'")),
    };
    cfg = cfg.method(method);
    // Sketch knobs: range validation happens in SthosvdConfig::validate, so
    // only syntax is checked here.
    let mut rnd = RandomizedSvdConfig::default();
    if let Some(v) = a.opt("oversample") {
        rnd.oversampling = v.parse().map_err(|_| "bad --oversample")?;
    }
    if let Some(v) = a.opt("power") {
        rnd.power_iterations = v.parse().map_err(|_| "bad --power")?;
    }
    if let Some(v) = a.opt("sketch-rows") {
        rnd.sketch_rows = v.parse().map_err(|_| "bad --sketch-rows")?;
    }
    if let Some(v) = a.opt("sketch-seed") {
        rnd.seed = v.parse().map_err(|_| "bad --sketch-seed")?;
    }
    cfg = cfg.randomized(rnd);
    cfg = match a.opt("order").unwrap_or("forward") {
        "forward" => cfg.order(ModeOrder::Forward),
        "backward" => cfg.order(ModeOrder::Backward),
        "auto" => {
            // Order optimization needs the truncated ranks up front (§4.2.3:
            // "if all dimensions and reduced ranks are known at the start").
            let ranks = parse_dims(
                a.opt("ranks").ok_or("--order auto requires --ranks (known target ranks)")?,
            )?;
            if ranks.len() != dims.len() {
                return Err(format!(
                    "--ranks has {} modes but the tensor has {}",
                    ranks.len(),
                    dims.len()
                ));
            }
            let ones = vec![1usize; dims.len()];
            let search = if dims.len() <= 6 {
                OrderSearch::Exhaustive
            } else {
                OrderSearch::Greedy
            };
            let (order, modeled) = optimize_mode_order(
                dims,
                &ranks,
                grid.unwrap_or(&ones),
                method,
                bytes,
                CostModel::andes(),
                search,
            );
            println!(
                "auto mode order: {:?} (modeled {modeled:.3e}s)",
                order.resolve(dims.len())
            );
            cfg.order(order)
        }
        other => return Err(format!("unknown --order '{other}'")),
    };
    Ok(cfg)
}

fn compress_typed<T: Scalar + tucker_tensor::io::IoScalar>(
    input: &str,
    output: &str,
    cfg: &SthosvdConfig,
) -> Result<(), String> {
    let x: Tensor<T> = read_tensor(input).map_err(io_err)?;
    let t0 = Instant::now();
    let out = sthosvd_with_info(&x, cfg).map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    write_tucker(output, &out.tucker).map_err(|e| e.to_string())?;
    println!(
        "compressed {:?} -> ranks {:?} ({:.1}x) in {dt:.2}s; estimated error {:.3e}",
        x.dims(),
        out.tucker.ranks(),
        out.tucker.compression_ratio(),
        out.estimated_error.to_f64()
    );
    Ok(())
}

fn compress(a: &Args) -> Result<(), String> {
    let input = a.pos(0, "in.tns")?.to_string();
    let output = a.pos(1, "out.tkr")?.to_string();
    let hdr = read_tensor_header(&input).map_err(io_err)?;
    let bytes = match hdr.precision {
        StoredPrecision::Single => 4,
        StoredPrecision::Double => 8,
    };
    let cfg = build_config(a, &hdr.dims, None, bytes)?;
    match hdr.precision {
        StoredPrecision::Single => compress_typed::<f32>(&input, &output, &cfg),
        StoredPrecision::Double => compress_typed::<f64>(&input, &output, &cfg),
    }
}

fn decompress(a: &Args) -> Result<(), String> {
    let input = a.pos(0, "in.tkr")?;
    let output = a.pos(1, "out.tns")?;
    // The header names the stored precision; reconstruct and write in kind.
    match read_tucker_any(input).map_err(|e| e.to_string())? {
        AnyTucker::F64(tk) => reconstruct_to(&tk, output),
        AnyTucker::F32(tk) => reconstruct_to(&tk, output),
    }
}

/// Shared tail of `decompress`: materialize and write the reconstruction.
fn reconstruct_to<T: Scalar + tucker_tensor::io::IoScalar>(
    tk: &TuckerTensor<T>,
    output: &str,
) -> Result<(), String> {
    let x = tk.reconstruct();
    write_tensor(output, &x).map_err(io_err)?;
    println!("reconstructed {:?} to {output}", x.dims());
    Ok(())
}

/// Serve one hyperslab query from a compressed store without materializing
/// the full reconstruction. `--verify` cross-checks the served result
/// against a full `reconstruct()` + gather — bit-exact under the default
/// `--order-policy exact`, tolerance-checked under `cost`.
fn query_cmd(a: &Args) -> Result<(), String> {
    let path = a.pos(0, "store.tkr")?;
    let spec = a.opt("slab").ok_or("query requires --slab (e.g. --slab '3,0:8,*')")?;
    let q = Query::parse(spec).map_err(|e| e.to_string())?;
    match tucker_serve::open_any(path).map_err(|e| e.to_string())? {
        AnyStore::F64(st) => query_typed(a, st, &q),
        AnyStore::F32(st) => query_typed(a, st, &q),
    }
}

fn query_typed<T: Scalar + tucker_tensor::io::IoScalar>(
    a: &Args,
    store: TuckerStore<T>,
    q: &Query,
) -> Result<(), String> {
    let policy = match a.opt("order-policy").unwrap_or("exact") {
        "exact" => OrderPolicy::Exact,
        "cost" => OrderPolicy::Cost,
        other => return Err(format!("unknown --order-policy '{other}'")),
    };
    let cfg = EngineConfig {
        cache_budget: if a.flag("no-cache") { 0 } else { EngineConfig::default().cache_budget },
        order_policy: policy,
        ..EngineConfig::default()
    };
    let dims = store.dims().to_vec();
    let mut engine = Engine::new(store, cfg);
    let out = engine.execute(q).map_err(|e| e.to_string())?;
    println!(
        "query {:?} of {:?}: {} elements, order {:?} ({:.3e} flops; optimal {:?} would be {:.3e})",
        q.out_dims(&dims),
        dims,
        out.tensor.len(),
        out.plan.order,
        out.plan.flops,
        out.plan.best_order,
        out.plan.best_flops,
    );
    if a.flag("verify") {
        let full = engine.store().tucker().reconstruct();
        let want = hyperslab(&full, &q.normalized(&dims));
        if out.tensor.dims() != want.dims() {
            return Err("verify failed: dimension mismatch".into());
        }
        match policy {
            OrderPolicy::Exact => {
                for (i, (g, w)) in out.tensor.data().iter().zip(want.data()).enumerate() {
                    if g.to_f64().to_bits() != w.to_f64().to_bits() {
                        return Err(format!(
                            "verify failed: element {i} differs ({:?} vs {:?})",
                            g.to_f64(),
                            w.to_f64()
                        ));
                    }
                }
                println!("verify: OK (bit-identical to full reconstruction)");
            }
            OrderPolicy::Cost => {
                let err = out.tensor.relative_error_to(&want).to_f64();
                if err > 1e-6 {
                    return Err(format!("verify failed: relative error {err:.3e}"));
                }
                println!("verify: OK (relative error {err:.3e})");
            }
        }
    }
    if let Some(path) = a.opt("out") {
        write_tensor(path, &out.tensor).map_err(io_err)?;
        println!("wrote slab to {path}");
    }
    let s = engine.cache_stats();
    println!(
        "modeled service: {:.3e}s; cache: {} hits, {} misses, {} bytes",
        out.cost.seconds, s.hits, s.misses, s.bytes
    );
    Ok(())
}

/// Split a compressed store into mode-0 shards (`shard0000.tkr` … plus a
/// `TKSM v1` manifest) for the replicated serving tier.
fn shard_cmd(a: &Args) -> Result<(), String> {
    let input = a.pos(0, "in.tkr")?;
    let dir = a.pos(1, "out-dir")?;
    let shards: usize = a
        .opt("shards")
        .ok_or("shard requires --shards")?
        .parse()
        .map_err(|_| "bad --shards")?;
    if shards == 0 {
        return Err("--shards must be positive".into());
    }
    match read_tucker_any(input).map_err(|e| e.to_string())? {
        AnyTucker::F64(tk) => shard_typed(dir, &tk, shards),
        AnyTucker::F32(tk) => shard_typed(dir, &tk, shards),
    }
}

fn shard_typed<T: tucker_tensor::io::IoScalar>(
    dir: &str,
    tk: &TuckerTensor<T>,
    shards: usize,
) -> Result<(), String> {
    let dims = tk.original_dims();
    if shards > dims[0] {
        return Err(format!("--shards {shards} exceeds mode-0 extent {}", dims[0]));
    }
    let paths = tucker_core::write_shards(dir, tk, shards).map_err(|e| e.to_string())?;
    println!("sharded {dims:?} into {shards} mode-0 shards under {dir}");
    for (s, p) in paths.iter().enumerate() {
        let r = tucker_dtensor::block_range(dims[0], shards, s);
        println!("  shard {s}: rows {}..{} -> {}", r.start, r.end, p.display());
    }
    Ok(())
}

/// Run the deterministic serving benchmark and emit its JSON record: the
/// naive-vs-batched engine comparison by default, or — with `--shards` —
/// the replicated tier's healthy/failover/overload benchmark
/// (`BENCH_pr7.json`), with `--inject` arming an mpisim fault plan against
/// world ranks.
fn serve_bench_cmd(a: &Args) -> Result<(), String> {
    if a.opt("trace").is_some() {
        return serve_trace_cmd(a);
    }
    if a.opt("shards").is_some() || a.opt("replicas").is_some() || a.opt("inject").is_some() {
        return failover_bench_cmd(a);
    }
    let r = run_serve_bench(a.flag("quick")).map_err(|e| e.to_string())?;
    let json = r.to_json();
    if let Some(path) = a.opt("out") {
        std::fs::write(path, format!("{json}\n")).map_err(io_err)?;
        println!("wrote serve bench to {path}");
    }
    println!("{json}");
    println!(
        "serve bench: {:.2}x batched speedup, p50 {:.3}ms, p99 {:.3}ms, {} rejected under overload",
        r.speedup, r.p50_ms, r.p99_ms, r.overload_rejected
    );
    Ok(())
}

/// The replicated-tier benchmark behind `serve-bench --shards`.
fn failover_bench_cmd(a: &Args) -> Result<(), String> {
    let parse_count = |key: &str, default: &str| -> Result<usize, String> {
        let n: usize = a
            .opt(key)
            .unwrap_or(default)
            .parse()
            .map_err(|_| format!("bad --{key}"))?;
        if n == 0 {
            return Err(format!("--{key} must be positive"));
        }
        Ok(n)
    };
    let shards = parse_count("shards", "2")?;
    let replicas = parse_count("replicas", "2")?;
    let plan = match a.opt("inject") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("bad --inject: {e}"))?),
        None => None,
    };
    let r = run_failover_bench(a.flag("quick"), shards, replicas, plan.as_ref())
        .map_err(|e| e.to_string())?;
    let json = r.to_json();
    if let Some(path) = a.opt("out") {
        std::fs::write(path, format!("{json}\n")).map_err(io_err)?;
        println!("wrote failover bench to {path}");
    }
    println!("{json}");
    println!(
        concat!(
            "failover bench: {}x{} tier; lost {} of {} queries (dead ranks {:?}, ",
            "recovery {:.3e}s vt); overload p99 {:.3}ms, {} rejected ({} low shed)"
        ),
        r.shards,
        r.replicas,
        r.failover_lost,
        r.queries,
        r.dead_ranks,
        r.failover_recovery_vt_s,
        r.overload_p99_ms,
        r.overload_rejected,
        r.overload_shed_low,
    );
    Ok(())
}

/// Shared option parsing for the observed tier workload behind
/// `serve-bench --trace` and `slo-report`: shard/replica counts (default
/// 2×2) and an optional `--inject` fault plan (default: crash one replica
/// mid-workload, so every trace contains a real failover story).
fn tier_options(a: &Args) -> Result<(usize, usize, Option<FaultPlan>), String> {
    let parse_count = |key: &str, default: &str| -> Result<usize, String> {
        let n: usize =
            a.opt(key).unwrap_or(default).parse().map_err(|_| format!("bad --{key}"))?;
        if n == 0 {
            return Err(format!("--{key} must be positive"));
        }
        Ok(n)
    };
    let shards = parse_count("shards", "2")?;
    let replicas = parse_count("replicas", "2")?;
    let plan = match a.opt("inject") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("bad --inject: {e}"))?),
        None => None,
    };
    Ok((shards, replicas, plan))
}

/// `serve-bench --trace DIR`: run one fully observed tier workload and
/// export every observability artifact — the merged Chrome trace (span
/// lanes + router lane, loadable in Perfetto), the `serve-log-v1`
/// structured log, the SLO report, and the per-query critical-path
/// attribution. All four files are pure functions of the virtual timeline:
/// byte-identical across runs.
fn serve_trace_cmd(a: &Args) -> Result<(), String> {
    let dir = std::path::Path::new(a.opt("trace").expect("caller checked --trace"));
    let (shards, replicas, plan) = tier_options(a)?;
    let (router, report) =
        run_tier_workload(a.flag("quick"), shards, replicas, plan.as_ref(), ObsConfig::full())
            .map_err(|e| e.to_string())?;
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let obs = router.observer();
    let merged = obs.merged_traces(&[]);
    std::fs::write(dir.join("trace.json"), chrome_trace_json(&merged)).map_err(io_err)?;
    std::fs::write(dir.join("serve.log"), obs.log_text()).map_err(io_err)?;
    let slo = evaluate_slo(router.metrics(), &slo_policy(a)?);
    std::fs::write(dir.join("slo.json"), slo.to_json()).map_err(io_err)?;
    std::fs::write(dir.join("critical_path.txt"), obs.critical_path_report()).map_err(io_err)?;
    println!(
        concat!(
            "traced {}x{} tier: {} completed, {} failed, {} spans across {} lanes, ",
            "{} log lines, {} slow queries"
        ),
        shards,
        replicas,
        report.completions.len(),
        report.failures.len(),
        obs.span_count(),
        merged.len(),
        obs.log_lines().len(),
        obs.slow_queries(),
    );
    println!("wrote trace.json, serve.log, slo.json, critical_path.txt to {}", dir.display());
    if slo.breached() {
        println!("note: SLO breached ({}); see slo.json", slo.breached_names().join(", "));
    }
    Ok(())
}

/// Parse `--slo-*` objective overrides on top of the default policy.
fn slo_policy(a: &Args) -> Result<SloPolicy, String> {
    let mut p = SloPolicy::default();
    let set = |key: &str, field: &mut f64| -> Result<(), String> {
        if let Some(v) = a.opt(key) {
            *field = v.parse().map_err(|_| format!("bad --{key}"))?;
        }
        Ok(())
    };
    set("slo-p50-ms", &mut p.p50_ms)?;
    set("slo-p99-ms", &mut p.p99_ms)?;
    set("slo-error-rate", &mut p.error_rate)?;
    set("slo-recovery-ms", &mut p.recovery_ms)?;
    Ok(p)
}

/// `tucker slo-report`: evaluate the SLO objectives over a deterministic
/// tier workload and exit nonzero on breach, naming the breached
/// objectives. The inputs are virtual-time metrics, so the report is
/// byte-identical across invocations.
fn slo_report_cmd(a: &Args) -> Result<(), String> {
    let (shards, replicas, plan) = tier_options(a)?;
    // SLO inputs (per-tenant latency histograms, error counters, the
    // recovery gauge) are recorded unconditionally, so the report does not
    // need tracing or logging enabled.
    let (router, _report) =
        run_tier_workload(a.flag("quick"), shards, replicas, plan.as_ref(), ObsConfig::default())
            .map_err(|e| e.to_string())?;
    let slo = evaluate_slo(router.metrics(), &slo_policy(a)?);
    let doc = if a.flag("json") { slo.to_json() } else { slo.table() };
    if let Some(path) = a.opt("out") {
        std::fs::write(path, &doc).map_err(io_err)?;
        println!("wrote SLO report to {path}");
    }
    print!("{doc}");
    if slo.breached() {
        return Err(format!("SLO breach: {}", slo.breached_names().join(", ")));
    }
    Ok(())
}

/// Run a parallel ST-HOSVD on the simulated MPI runtime, optionally exporting
/// a Chrome-trace JSON (`--trace`, loadable in Perfetto / `chrome://tracing`)
/// and a per-rank text timeline (`--timeline`). `--validate` turns on the
/// collective-sequence validator and the deadlock watchdog (see DESIGN.md
/// §Observability).
///
/// Fault-tolerance flags (DESIGN.md §Fault model): `--inject` runs under a
/// deterministic fault plan, `--watchdog-ms` bounds wall-clock stalls,
/// `--checkpoint-dir` commits per-mode checkpoints, and `--resume` restarts
/// from the last committed mode in that directory.
fn simulate(a: &Args) -> Result<(), String> {
    let grid_dims = parse_dims(a.opt("grid").ok_or("simulate requires --grid")?)?;
    let x: Tensor<f64> = if let Some(input) = a.positional.first() {
        let hdr = read_tensor_header(input).map_err(io_err)?;
        match hdr.precision {
            StoredPrecision::Double => read_tensor(input).map_err(io_err)?,
            StoredPrecision::Single => read_tensor::<f32>(input).map_err(io_err)?.cast(),
        }
    } else {
        let dims = parse_dims(
            a.opt("dims").ok_or("simulate needs an input file or --dims")?,
        )?;
        let seed: u64 = a.opt("seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
        synthetic_tensor(a.opt("kind").unwrap_or("random"), &dims, seed)?
    };
    if grid_dims.len() != x.dims().len() {
        return Err(format!(
            "--grid has {} modes but the tensor has {}",
            grid_dims.len(),
            x.dims().len()
        ));
    }
    let cfg = build_config(a, x.dims(), Some(&grid_dims), 8)?;
    let p: usize = grid_dims.iter().product();

    let checkpoint = a.opt("checkpoint-dir").map(|dir| {
        CheckpointOptions::new(dir).resume(a.flag("resume"))
    });
    if a.flag("resume") && checkpoint.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }

    let mut sim = Simulator::new(p).with_cost(CostModel::andes());
    if a.opt("trace").is_some() || a.opt("timeline").is_some() || a.flag("validate") {
        let tc = if a.flag("validate") { TraceConfig::validating() } else { TraceConfig::default() };
        sim = sim.with_trace(tc);
    }
    if let Some(spec) = a.opt("inject") {
        sim = sim.with_faults(FaultPlan::parse(spec).map_err(|e| format!("bad --inject: {e}"))?);
    }
    if let Some(ms) = a.opt("watchdog-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --watchdog-ms")?;
        sim = sim.with_watchdog(Duration::from_millis(ms));
    }
    if let Some(t) = a.opt("threads") {
        sim = sim.with_threads(parse_threads(t)?);
    }
    let metrics_path = a.opt("metrics").map(str::to_string);
    let model_check = a.flag("model-check");
    let model_tol: f64 = match a.opt("model-tol") {
        Some(s) => s.parse().map_err(|_| "bad --model-tol")?,
        None => 0.05,
    };
    if metrics_path.is_some() || model_check {
        sim = sim.with_metrics(true);
    }
    let grid = ProcessorGrid::new(&grid_dims);
    let out = sim
        .run_result(|ctx| {
            let dt = DistTensor::scatter_from(&x, &grid, ctx.rank());
            let po = match &checkpoint {
                Some(opts) => sthosvd_parallel_checkpointed(ctx, &dt, &cfg, opts)
                    .map_err(|e| e.to_string())?,
                None => sthosvd_parallel(ctx, &dt, &cfg).map_err(|e| e.to_string())?,
            };
            Ok::<_, String>((po.ranks(), po.estimated_error))
        })
        .map_err(|e| e.to_string())?;
    let (ranks, est_err) = &out.results[0];
    // Conformance check: predicted per-mode flop/word counts from the
    // configured geometry, measured counts from the run's phase stats.
    let report = if model_check {
        let check = CheckConfig {
            dims: x.dims().to_vec(),
            ranks: ranks.clone(),
            grid: grid_dims.clone(),
            order: cfg.mode_order.resolve(x.dims().len()),
            method: cfg.method,
            tree: cfg.tree,
            bytes: 8, // simulate always runs in f64
            randomized: cfg.randomized,
            tolerance: model_tol,
        };
        let mut r = check_model(&check, &out.stats);
        // A resumed run restores the modes committed before the crash from
        // the checkpoint instead of re-executing them, so those modes have
        // no measured work at all; checking them against full-run
        // predictions would always fail. Drop the untouched (all-zero
        // measured) modes and re-derive the verdict from the rest — modes
        // the resume actually re-executes still must match exactly.
        if a.flag("resume") {
            r.per_mode.retain(|m| {
                m.flops_measured != 0.0 || m.bytes_measured != 0.0 || m.msgs_measured != 0
            });
            r.pass = r.per_mode.iter().all(|m| m.pass);
        }
        Some(r)
    } else {
        None
    };
    // Export before printing the (long) report: a consumer that closes
    // stdout early must not lose the trace files to a SIGPIPE.
    if let Some(path) = a.opt("trace") {
        std::fs::write(path, chrome_trace_json(&out.traces)).map_err(io_err)?;
    }
    if let Some(path) = a.opt("timeline") {
        std::fs::write(path, text_timeline(&out.traces)).map_err(io_err)?;
    }
    if let Some(path) = &metrics_path {
        std::fs::write(path, metrics_json(&out.metrics, report.as_ref())).map_err(io_err)?;
    }
    println!(
        "simulated {p} ranks on grid {grid_dims:?}: {:?} -> ranks {ranks:?}, estimated error {:.3e}",
        x.dims(),
        est_err
    );
    let b = out.breakdown();
    println!("{}", b.critical_path_report());
    println!("{}", b.slowest_rank_report());
    if let Some(path) = a.opt("trace") {
        println!("wrote Chrome trace for {} ranks to {path}", out.traces.len());
    }
    if let Some(path) = a.opt("timeline") {
        println!("wrote text timeline to {path}");
    }
    if let Some(path) = &metrics_path {
        println!("wrote metrics for {} ranks to {path}", out.metrics.len());
    }
    if let Some(r) = &report {
        println!("{}", r.table());
        if !r.pass {
            return Err(format!(
                "model conformance check failed (tolerance {:.1e})",
                r.tolerance
            ));
        }
    }
    Ok(())
}

/// Assemble the `--metrics` JSON document: per-rank registries plus the
/// conformance report (when `--model-check` ran). Purely concatenative —
/// every piece is already deterministic JSON.
fn metrics_json(per_rank: &[MetricsRegistry], report: Option<&ModelCheckReport>) -> String {
    let ranks: Vec<String> = per_rank.iter().map(|r| r.to_json()).collect();
    format!(
        "{{\"schema\":\"tucker-metrics-v1\",\"ranks\":{},\"per_rank\":[{}],\"model_check\":{}}}\n",
        per_rank.len(),
        ranks.join(","),
        report.map_or("null".to_string(), |r| r.to_json()),
    )
}

fn info(a: &Args) -> Result<(), String> {
    let path = a.pos(0, "file")?;
    if let Ok(hdr) = read_tensor_header(path) {
        let elems: usize = hdr.dims.iter().product();
        let width = match hdr.precision {
            StoredPrecision::Single => 4,
            StoredPrecision::Double => 8,
        };
        println!(
            "tensor file: dims {:?}, {} precision, {elems} elements, {} bytes payload",
            hdr.dims,
            if width == 4 { "single" } else { "double" },
            elems * width
        );
        return Ok(());
    }
    if let Ok(hdr) = read_tucker_hdr(path) {
        match read_tucker_any(path).map_err(|e| e.to_string())? {
            AnyTucker::F64(tk) => print_tucker_info(&tk, hdr.version),
            AnyTucker::F32(tk) => print_tucker_info(&tk, hdr.version),
        }
        return Ok(());
    }
    Err(format!("{path}: not a recognized tensor or Tucker file"))
}

fn print_tucker_info<T: Scalar>(tk: &TuckerTensor<T>, version: u32) {
    println!(
        "tucker file (v{version}): original dims {:?}, ranks {:?}, {} parameters, compression {:.1}x",
        tk.original_dims(),
        tk.ranks(),
        tk.num_parameters(),
        tk.compression_ratio()
    );
}

/// `tucker error` streams both operands blockwise — neither the original
/// nor the reconstruction is ever fully resident. The second argument may
/// be a raw tensor file or a compressed `.tkr` store, whose blocks are
/// reconstructed on the fly by the query engine.
fn error_cmd(a: &Args) -> Result<(), String> {
    let orig = a.pos(0, "original.tns")?;
    let recon = a.pos(1, "reconstruction.tns|.tkr")?;
    let ho = read_tensor_header(orig).map_err(io_err)?;
    if read_tensor_header(recon).is_ok() {
        return error_vs_tensor(orig, recon, &ho.dims);
    }
    match tucker_serve::open_any(recon).map_err(|e| format!("{recon}: {e}"))? {
        AnyStore::F64(st) => error_vs_store(orig, st, &ho.dims),
        AnyStore::F32(st) => error_vs_store(orig, st, &ho.dims),
    }
}

/// Chunked streaming comparison against `f64`-converted buffers.
fn next_chunk_f64(
    reader: &mut ChunkReader,
    max: usize,
    buf: &mut Vec<f64>,
) -> Result<usize, String> {
    match reader {
        ChunkReader::F64(c, raw) => {
            let n = c.next_chunk(max, raw).map_err(io_err)?;
            buf.clear();
            buf.extend_from_slice(&raw[..n]);
            Ok(n)
        }
        ChunkReader::F32(c, raw) => {
            let n = c.next_chunk(max, raw).map_err(io_err)?;
            buf.clear();
            buf.extend(raw[..n].iter().map(|&v| v as f64));
            Ok(n)
        }
    }
}

enum ChunkReader {
    F64(TensorChunks<f64>, Vec<f64>),
    F32(TensorChunks<f32>, Vec<f32>),
}

fn open_chunks(path: &str) -> Result<ChunkReader, String> {
    let hdr = read_tensor_header(path).map_err(io_err)?;
    Ok(match hdr.precision {
        StoredPrecision::Double => ChunkReader::F64(TensorChunks::open(path).map_err(io_err)?, Vec::new()),
        StoredPrecision::Single => ChunkReader::F32(TensorChunks::open(path).map_err(io_err)?, Vec::new()),
    })
}

/// Elements per streamed block (~0.5 MiB of f64).
const ERROR_BLOCK_ELEMS: usize = 1 << 16;

fn error_vs_tensor(orig: &str, recon: &str, dims: &[usize]) -> Result<(), String> {
    let hr = read_tensor_header(recon).map_err(io_err)?;
    if dims != hr.dims {
        return Err(format!("dimension mismatch: {dims:?} vs {:?}", hr.dims));
    }
    let mut xs = open_chunks(orig)?;
    let mut ys = open_chunks(recon)?;
    let mut nx = FrobAccumulator::<f64>::new();
    let mut nd = FrobAccumulator::<f64>::new();
    let (mut xb, mut yb) = (Vec::new(), Vec::new());
    loop {
        let n = next_chunk_f64(&mut xs, ERROR_BLOCK_ELEMS, &mut xb)?;
        let m = next_chunk_f64(&mut ys, ERROR_BLOCK_ELEMS, &mut yb)?;
        if n != m {
            return Err("payload length mismatch".into());
        }
        if n == 0 {
            break;
        }
        nx.push(&xb);
        nd.push_diff(&xb, &yb);
    }
    print_relative_error(nd.norm(), nx.norm());
    Ok(())
}

/// Compare a streamed original against a compressed store, reconstructing
/// one last-mode block at a time (mode 0 varies fastest in both the file
/// payload and the engine's output, so each block is one contiguous run).
fn error_vs_store<T: Scalar + tucker_tensor::io::IoScalar>(
    orig: &str,
    store: TuckerStore<T>,
    dims: &[usize],
) -> Result<(), String> {
    if dims != store.dims() {
        return Err(format!("dimension mismatch: {dims:?} vs {:?}", store.dims()));
    }
    let last = dims.len() - 1;
    let stride_last: usize = dims[..last].iter().product();
    let rows_per_block = (ERROR_BLOCK_ELEMS / stride_last.max(1)).clamp(1, dims[last]);
    let mut xs = open_chunks(orig)?;
    let mut engine = Engine::new(store, EngineConfig::default());
    let mut nx = FrobAccumulator::<f64>::new();
    let mut nd = FrobAccumulator::<f64>::new();
    let (mut xb, mut yb) = (Vec::new(), Vec::new());
    let mut k = 0;
    while k < dims[last] {
        let rows = rows_per_block.min(dims[last] - k);
        let mut sel: Vec<tucker_serve::ModeSel> =
            dims[..last].iter().map(|_| tucker_serve::ModeSel::All).collect();
        sel.push(tucker_serve::ModeSel::Range(k, k + rows));
        let out = engine.execute(&Query { sel }).map_err(|e| e.to_string())?;
        let n = next_chunk_f64(&mut xs, rows * stride_last, &mut xb)?;
        if n != out.tensor.len() {
            return Err("payload length mismatch".into());
        }
        yb.clear();
        yb.extend(out.tensor.data().iter().map(|&v| v.to_f64()));
        nx.push(&xb);
        nd.push_diff(&xb, &yb);
        k += rows;
    }
    // The file must be exactly exhausted.
    if next_chunk_f64(&mut xs, 1, &mut xb)? != 0 {
        return Err("payload length mismatch".into());
    }
    print_relative_error(nd.norm(), nx.norm());
    Ok(())
}

fn print_relative_error(diff: f64, reference: f64) {
    if reference == 0.0 {
        println!("relative error: {:.6e}", if diff == 0.0 { 0.0 } else { f64::INFINITY });
    } else {
        println!("relative error: {:.6e}", diff / reference);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use tucker_core::read_tucker;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn tmpdir() -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tucker_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn full_pipeline_roundtrip() {
        let dir = tmpdir();
        let tns = dir.join("x.tns").display().to_string();
        let tkr = dir.join("x.tkr").display().to_string();
        let rec = dir.join("r.tns").display().to_string();

        run(&parse(&toks(&format!(
            "generate {tns} --kind hcci --dims 12x12x8x12 --seed 7"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!("info {tns}"))).unwrap()).unwrap();
        run(&parse(&toks(&format!(
            "compress {tns} {tkr} --tol 1e-3 --method qr --order backward"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!("info {tkr}"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("decompress {tkr} {rec}"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("error {tns} {rec}"))).unwrap()).unwrap();

        // Check the error numerically, not just that it printed.
        let x: Tensor<f64> = read_tensor(&tns).unwrap();
        let y: Tensor<f64> = read_tensor(&rec).unwrap();
        assert!(x.relative_error_to(&y) <= 1e-3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn f32_pipeline_with_mixed_method() {
        let dir = tmpdir();
        let tns = dir.join("s.tns").display().to_string();
        let tkr = dir.join("s.tkr").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind random --dims 8x8x8 --f32"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!(
            "compress {tns} {tkr} --ranks 3x3x3 --method gram-mixed"
        )))
        .unwrap())
        .unwrap();
        let tk: TuckerTensor<f32> = read_tucker(&tkr).unwrap();
        assert_eq!(tk.ranks(), vec![3, 3, 3]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn randomized_requires_ranks() {
        let dir = tmpdir();
        let tns = dir.join("t.tns").display().to_string();
        let tkr = dir.join("t.tkr").display().to_string();
        run(&parse(&toks(&format!("generate {tns} --kind random --dims 6x6x6"))).unwrap())
            .unwrap();
        let r = run(&parse(&toks(&format!(
            "compress {tns} {tkr} --tol 1e-2 --method randomized"
        )))
        .unwrap());
        assert!(r.is_err(), "tolerance-driven randomized must be rejected");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn svd_randomized_compress_and_simulate() {
        let dir = tmpdir().join("svd_rand");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("r.tns").display().to_string();
        let tkr = dir.join("r.tkr").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind hcci --dims 12x12x8x12 --seed 3"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!(
            "compress {tns} {tkr} --ranks 4x4x3x4 --svd randomized --oversample 4 --power 1"
        )))
        .unwrap())
        .unwrap();
        let tk: TuckerTensor<f64> = read_tucker(&tkr).unwrap();
        assert_eq!(tk.ranks(), vec![4, 4, 3, 4]);
        // Distributed simulate with the same method + the conformance gate.
        run(&parse(&toks(
            "simulate --grid 2x2x1 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --svd randomized --model-check",
        ))
        .unwrap())
        .unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn svd_sketched_gram_simulate_and_bad_knobs_rejected() {
        run(&parse(&toks(
            "simulate --grid 2x1x2 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --svd sketched-gram --sketch-rows 64 --model-check",
        ))
        .unwrap())
        .unwrap();
        // Out-of-range knobs surface as typed config errors, not clamps.
        let r = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 4x4x4 \
             --svd randomized --oversample 0",
        ))
        .unwrap());
        assert!(r.is_err(), "zero oversampling must be rejected");
        let r = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 4x4x4 \
             --svd sketched-gram --sketch-rows 2",
        ))
        .unwrap());
        assert!(r.is_err(), "sketch-rows below 4 must be rejected");
    }

    #[test]
    fn simulate_eight_ranks_emits_chrome_trace_with_phase_spans() {
        let dir = tmpdir().join("sim8");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("sim.trace.json").display().to_string();
        let timeline = dir.join("sim.timeline.txt").display().to_string();
        run(&parse(&toks(&format!(
            "simulate --grid 2x2x2 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --method qr --trace {trace} --timeline {timeline} --validate"
        )))
        .unwrap())
        .unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        // Perfetto-loadable: complete spans plus per-rank thread metadata.
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        for phase in ["LQ", "SVD", "TTM", "Redistribute"] {
            assert!(json.contains(&format!("\"name\":\"{phase}")), "missing {phase} span");
        }
        let txt = std::fs::read_to_string(&timeline).unwrap();
        assert!(txt.contains("rank 7"), "timeline should cover all 8 ranks");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_gram_method_traces_gram_phase() {
        let dir = tmpdir().join("simgram");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("gram.trace.json").display().to_string();
        run(&parse(&toks(&format!(
            "simulate --grid 1x2x2 --kind random --dims 12x12x12 --tol 1e-2 \
             --method gram --trace {trace}"
        )))
        .unwrap())
        .unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.contains("\"name\":\"Gram"), "missing Gram span");
        assert!(json.contains("\"name\":\"EVD"), "missing EVD span");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_accepts_thread_topology_flags() {
        for spec in ["1", "2", "auto"] {
            run(&parse(&toks(&format!(
                "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 --threads {spec}"
            )))
            .unwrap())
            .unwrap();
        }
    }

    #[test]
    fn simulate_rejects_bad_threads_value() {
        for spec in ["0", "-1", "many"] {
            let msg = run(&parse(&toks(&format!(
                "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 --threads {spec}"
            )))
            .unwrap())
            .unwrap_err();
            assert!(msg.contains("--threads"), "{msg}");
        }
    }

    #[test]
    fn simulate_rejects_grid_tensor_rank_mismatch() {
        let r = run(&parse(&toks(
            "simulate --grid 2x2 --kind random --dims 8x8x8 --ranks 2x2x2",
        ))
        .unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn simulate_injected_crash_fails_naming_the_rank() {
        let msg = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 \
             --inject crash:rank=1,op=5 --watchdog-ms 5000",
        ))
        .unwrap())
        .unwrap_err();
        assert!(msg.contains("rank 1 crashed"), "error should name the crashed rank: {msg}");
    }

    #[test]
    fn simulate_rejects_bad_inject_spec_and_lone_resume() {
        let msg = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --inject explode:rank=1",
        ))
        .unwrap())
        .unwrap_err();
        assert!(msg.contains("--inject"), "{msg}");
        let msg = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --resume",
        ))
        .unwrap())
        .unwrap_err();
        assert!(msg.contains("--checkpoint-dir"), "{msg}");
    }

    #[test]
    fn simulate_crash_checkpoint_resume_cycle() {
        let dir = tmpdir().join("ckpt_cycle");
        let ck = dir.display().to_string();
        // Crash partway through a checkpointed run...
        let r = run(&parse(&toks(&format!(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 \
             --checkpoint-dir {ck} --inject crash:rank=1,op=16 --watchdog-ms 5000"
        )))
        .unwrap());
        assert!(r.is_err(), "injected crash should fail the simulation");
        // ...then restart from the last committed mode, no injection this time.
        run(&parse(&toks(&format!(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 \
             --checkpoint-dir {ck} --resume"
        )))
        .unwrap())
        .unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_resume_model_check_skips_checkpointed_modes() {
        let dir = tmpdir().join("ckpt_modelcheck");
        let ck = dir.display().to_string();
        let metrics = dir.join("m.json").display().to_string();
        let r = run(&parse(&toks(&format!(
            "simulate --grid 2x2x2 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --checkpoint-dir {ck} --inject crash:rank=3,op=40 --watchdog-ms 5000"
        )))
        .unwrap());
        assert!(r.is_err(), "injected crash should fail the simulation");
        // The resumed run restores the committed modes from disk; the
        // conformance check must only judge the modes it re-executed.
        run(&parse(&toks(&format!(
            "simulate --grid 2x2x2 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --checkpoint-dir {ck} --resume --metrics {metrics} --model-check"
        )))
        .unwrap())
        .unwrap();
        let doc = std::fs::read_to_string(&metrics).unwrap();
        assert!(doc.contains("\"pass\":true"), "{doc}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_metrics_and_model_check_pass_on_even_grid() {
        let dir = tmpdir().join("simmetrics");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("m.json").display().to_string();
        run(&parse(&toks(&format!(
            "simulate --grid 2x2x2 --kind random --dims 16x16x16 --ranks 4x4x4 \
             --method qr --metrics {metrics} --model-check"
        )))
        .unwrap())
        .unwrap();
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"schema\":\"tucker-metrics-v1\""));
        assert!(json.contains("\"ranks\":8"));
        for key in [
            "comm/alltoallv/bytes",
            "comm/p2p/msgs",
            "kernel/lq/flops",
            "mem/peak_live_payload_bytes",
            "sthosvd/mode0/retained_rank",
            "\"model_check\":{",
        ] {
            assert!(json.contains(key), "metrics JSON missing {key}:\n{json}");
        }
        // Even 2x2x2 grid on 16^3: the analytic counts are exact, so the
        // embedded conformance report must pass.
        assert!(json.contains("\"pass\":true"), "{json}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn simulate_model_check_failure_is_a_cli_error() {
        // An absurd tolerance cannot fail, but a tolerance of zero must fail
        // on any run with nonzero rounding in the f64 flop accumulators...
        // which an even grid doesn't have. Force a failure deterministically
        // instead: check a Gram run against the Qr model by lying about the
        // method via --model-tol on a *negative* tolerance, which no
        // deviation can satisfy.
        let r = run(&parse(&toks(
            "simulate --grid 2x1x1 --kind random --dims 8x8x8 --ranks 2x2x2 \
             --method gram --model-check --model-tol -1",
        ))
        .unwrap());
        let msg = r.unwrap_err();
        assert!(msg.contains("model conformance check failed"), "{msg}");
    }

    #[test]
    fn order_auto_compresses_and_roundtrips() {
        let dir = tmpdir().join("orderauto");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("x.tns").display().to_string();
        let tkr = dir.join("x.tkr").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind random --dims 20x6x10 --seed 3"
        )))
        .unwrap())
        .unwrap();
        // Auto ordering requires known ranks...
        let msg = run(&parse(&toks(&format!(
            "compress {tns} {tkr} --tol 1e-3 --order auto"
        )))
        .unwrap())
        .unwrap_err();
        assert!(msg.contains("--ranks"), "{msg}");
        // ...and with them produces a working store.
        run(&parse(&toks(&format!(
            "compress {tns} {tkr} --ranks 4x2x3 --order auto"
        )))
        .unwrap())
        .unwrap();
        let tk: TuckerTensor<f64> = read_tucker(&tkr).unwrap();
        assert_eq!(tk.ranks(), vec![4, 2, 3]);
        // The optimized order also drives the simulated path.
        run(&parse(&toks(&format!(
            "simulate {tns} --grid 2x1x1 --ranks 4x2x3 --order auto"
        )))
        .unwrap())
        .unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn query_serves_verified_slabs_from_a_store() {
        let dir = tmpdir().join("querycli");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("q.tns").display().to_string();
        let tkr = dir.join("q.tkr").display().to_string();
        let out = dir.join("slab.tns").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind random --dims 16x12x10 --seed 11"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!("compress {tns} {tkr} --ranks 5x4x3"))).unwrap()).unwrap();
        // Several shapes, each verified bit-exact against reconstruct().
        for spec in ["3,4,5", "*,4,5", "*,4,*", "0:16:3,2:8,*", "2:9,1:5,3:8"] {
            run(&parse(&[
                "query".into(),
                tkr.clone(),
                "--slab".into(),
                spec.into(),
                "--verify".into(),
            ])
            .unwrap())
            .unwrap();
        }
        // Cache off and cost order also pass verification.
        run(&parse(&[
            "query".into(),
            tkr.clone(),
            "--slab".into(),
            "0:8,*,2".into(),
            "--verify".into(),
            "--no-cache".into(),
        ])
        .unwrap())
        .unwrap();
        run(&parse(&[
            "query".into(),
            tkr.clone(),
            "--slab".into(),
            "0:8,*,2".into(),
            "--verify".into(),
            "--order-policy".into(),
            "cost".into(),
        ])
        .unwrap())
        .unwrap();
        // --out writes a loadable tensor of the right shape.
        run(&parse(&[
            "query".into(),
            tkr.clone(),
            "--slab".into(),
            "1:5,2,*".into(),
            "--out".into(),
            out.clone(),
        ])
        .unwrap())
        .unwrap();
        let slab: Tensor<f64> = read_tensor(&out).unwrap();
        assert_eq!(slab.dims(), &[4, 1, 10]);
        // Bad specs are CLI errors, not panics.
        for bad in ["1:0,2,3", "9999,0,0", "1,2"] {
            assert!(run(&parse(&[
                "query".into(),
                tkr.clone(),
                "--slab".into(),
                bad.into(),
            ])
            .unwrap())
            .is_err());
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn error_cmd_accepts_compressed_store_blockwise() {
        let dir = tmpdir().join("errstore");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("e.tns").display().to_string();
        let tkr = dir.join("e.tkr").display().to_string();
        let rec = dir.join("e_rec.tns").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind hcci --dims 10x10x8x10 --seed 5"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!("compress {tns} {tkr} --tol 1e-3"))).unwrap()).unwrap();
        // Blockwise error against the store must equal the materialized path.
        run(&parse(&toks(&format!("error {tns} {tkr}"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("decompress {tkr} {rec}"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("error {tns} {rec}"))).unwrap()).unwrap();
        let x: Tensor<f64> = read_tensor(&tns).unwrap();
        let y: Tensor<f64> = read_tensor(&rec).unwrap();
        assert!(x.relative_error_to(&y) <= 1e-3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn serve_bench_quick_writes_json() {
        let dir = tmpdir().join("servebench");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("b.json").display().to_string();
        run(&parse(&toks(&format!("serve-bench --quick --out {out}"))).unwrap()).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\":\"serve\""));
        assert!(json.contains("\"speedup\":"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn serve_bench_shards_runs_failover_and_accepts_inject() {
        let dir = tmpdir().join("failoverbench");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("f.json").display().to_string();
        run(&parse(&toks(&format!(
            "serve-bench --quick --shards 2 --replicas 2 --inject crash:rank=1,op=2 --out {out}"
        )))
        .unwrap())
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\":\"failover\""), "{json}");
        assert!(json.contains("\"failover_lost\":0"), "{json}");
        assert!(json.contains("\"failover_crc_identical\":true"), "{json}");
        assert!(json.contains("\"dead_ranks\":[1]"), "{json}");
        // Bad inject specs and degenerate layouts are CLI errors, not panics.
        assert!(run(&parse(&toks("serve-bench --quick --shards 0")).unwrap()).is_err());
        assert!(run(
            &parse(&toks("serve-bench --quick --shards 2 --inject flood:rank=0,op=1")).unwrap()
        )
        .is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn serve_bench_trace_exports_observability_artifacts_deterministically() {
        let dir = tmpdir().join("servetrace");
        let d1 = dir.join("run1").display().to_string();
        let d2 = dir.join("run2").display().to_string();
        run(&parse(&toks(&format!("serve-bench --quick --trace {d1}"))).unwrap()).unwrap();

        // One merged Chrome-trace file telling the failover story: the
        // default plan crashes rank 1, so some query must show a failed
        // attempt, a backoff, and a successful retry on the other replica.
        let trace = std::fs::read_to_string(format!("{d1}/trace.json")).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains(" crash\",\"ph\":\"X\""), "crashed attempt span missing");
        assert!(trace.contains("/backoff#0\""), "backoff span missing");
        assert!(trace.contains(" ok\",\"ph\":\"X\""), "successful retry span missing");
        assert!(trace.contains("fault: "), "fault instant missing");

        let log = std::fs::read_to_string(format!("{d1}/serve.log")).unwrap();
        assert!(log.lines().all(|l| l.starts_with("{\"schema\":\"serve-log-v1\"")));
        assert!(log.contains("\"event\":\"failover\""), "failover must be logged");
        assert!(log.contains("\"event\":\"complete\""));

        let slo = std::fs::read_to_string(format!("{d1}/slo.json")).unwrap();
        assert!(slo.starts_with("{\"schema\":\"tucker-slo-v1\""));
        let cp = std::fs::read_to_string(format!("{d1}/critical_path.txt")).unwrap();
        assert!(cp.contains("per-query critical path"), "{cp}");
        assert!(cp.contains("= request #"), "legend maps pseudo-ranks to requests");

        // Byte-identical across runs: every artifact is virtual-time pure.
        run(&parse(&toks(&format!("serve-bench --quick --trace {d2}"))).unwrap()).unwrap();
        for f in ["trace.json", "serve.log", "slo.json", "critical_path.txt"] {
            let a = std::fs::read(format!("{d1}/{f}")).unwrap();
            let b = std::fs::read(format!("{d2}/{f}")).unwrap();
            assert_eq!(a, b, "{f} must be byte-identical across runs");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn slo_report_passes_healthy_and_fails_naming_breached_objectives() {
        let dir = tmpdir().join("sloreport");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("slo.json").display().to_string();
        // Default plan: one crashed replica, zero lost queries — within SLO.
        run(&parse(&toks("slo-report --quick")).unwrap()).unwrap();
        // Kill both replicas of shard 0 up front: every query touching
        // shard 0 fails typed, blowing the 0.1% error budget.
        let msg = run(&parse(&toks(&format!(
            "slo-report --quick --inject crash:rank=0,op=0;crash:rank=1,op=0 --json --out {out}"
        )))
        .unwrap())
        .unwrap_err();
        assert!(msg.contains("SLO breach"), "{msg}");
        assert!(msg.contains("error_rate"), "breach must name the objective: {msg}");
        let doc = std::fs::read_to_string(&out).unwrap();
        assert!(doc.starts_with("{\"schema\":\"tucker-slo-v1\",\"breached\":true"), "{doc}");
        assert!(doc.contains("\"name\":\"error_rate\""), "{doc}");
        // A loosened budget accepts the same run.
        run(&parse(&toks(
            "slo-report --quick --inject crash:rank=0,op=0;crash:rank=1,op=0 \
             --slo-error-rate 0.9",
        ))
        .unwrap())
        .unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shard_cmd_splits_a_store_with_manifest() {
        let dir = tmpdir().join("shardcmd");
        std::fs::create_dir_all(&dir).unwrap();
        let tns = dir.join("s.tns").display().to_string();
        let tkr = dir.join("s.tkr").display().to_string();
        let shards_dir = dir.join("shards").display().to_string();
        run(&parse(&toks(&format!(
            "generate {tns} --kind random --dims 20x12x10 --seed 11"
        )))
        .unwrap())
        .unwrap();
        run(&parse(&toks(&format!("compress {tns} {tkr} --ranks 5x4x3"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("shard {tkr} {shards_dir} --shards 3"))).unwrap()).unwrap();
        let (manifest, parts) =
            tucker_core::read_shards::<f64>(&shards_dir).expect("shards read back");
        assert_eq!(manifest.shards, 3);
        assert_eq!(manifest.dims, vec![20, 12, 10]);
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(|p| p.original_dims()[0]).sum::<usize>(),
            20,
            "shards partition mode 0"
        );
        // Degenerate shard counts are CLI errors.
        assert!(run(&parse(&toks(&format!("shard {tkr} {shards_dir} --shards 0"))).unwrap())
            .is_err());
        assert!(run(&parse(&toks(&format!("shard {tkr} {shards_dir} --shards 21"))).unwrap())
            .is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_subcommand() {
        assert!(run(&parse(&toks("frobnicate x")).unwrap()).is_err());
    }

    #[test]
    fn dimension_mismatch_in_error_cmd() {
        let dir = tmpdir();
        let a = dir.join("a1.tns").display().to_string();
        let b = dir.join("b1.tns").display().to_string();
        run(&parse(&toks(&format!("generate {a} --kind random --dims 4x4"))).unwrap()).unwrap();
        run(&parse(&toks(&format!("generate {b} --kind random --dims 4x5"))).unwrap()).unwrap();
        assert!(run(&parse(&toks(&format!("error {a} {b}"))).unwrap()).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
