//! `tucker` — command-line Tucker compression.
//!
//! ```text
//! tucker generate <out.tns> --kind hcci|sp|video|random --dims 40x40x33x40 [--seed N] [--f32]
//! tucker compress <in.tns> <out.tkr> [--tol 1e-4 | --ranks 5x5x3x5]
//!                 [--method qr|gram|gram-mixed|randomized] [--order forward|backward]
//! tucker decompress <in.tkr> <out.tns>
//! tucker info <file.tns|file.tkr>
//! tucker error <original.tns> <reconstruction.tns>
//! ```
//!
//! The method/tolerance guidance follows the paper (see README): `qr` in
//! double precision is always safe; `gram` is ~2x cheaper but unreliable for
//! tolerances below `√ε`; `gram-mixed` (single-precision data, double
//! accumulation) covers the middle ground; `randomized` needs `--ranks`.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
