//! Property tests: every query the engine serves is **bit-identical** to
//! the corresponding hyperslab of `TuckerTensor::reconstruct()` — both
//! precisions, cache on and off, every selection shape. This is the
//! crate's load-bearing guarantee: serving from the compressed store is
//! indistinguishable (to the bit) from materializing the full tensor and
//! slicing it.

use proptest::prelude::*;
use tucker_serve::{Engine, EngineConfig, ModeSel, OrderPolicy, Query, TuckerStore};
use tucker_serve::workload::synthetic_store;
use tucker_tensor::hyperslab;
use tucker_tensor::io::IoScalar;

/// Raw per-mode selector material; shaped into a valid `ModeSel` in-body.
type RawSel = (usize, usize, usize, usize);

fn raw_case() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, Vec<RawSel>)> {
    (
        proptest::collection::vec(4usize..12, 3),
        proptest::collection::vec(2usize..5, 3),
        proptest::collection::vec((0usize..5, 0usize..64, 1usize..64, 1usize..4), 3),
    )
}

/// Deterministically shape raw numbers into a valid selection for extent d.
fn shape_sel(raw: RawSel, d: usize) -> ModeSel {
    let (variant, a, b, s) = raw;
    match variant {
        0 => ModeSel::All,
        1 => ModeSel::Index(a % d),
        2 => {
            let start = a % d;
            let end = start + 1 + b % (d - start);
            ModeSel::Range(start, end)
        }
        3 => {
            let start = a % d;
            let step = 1 + s % 3;
            let avail = 1 + (d - 1 - start) / step;
            ModeSel::Strided { start, step, count: 1 + b % avail }
        }
        _ => ModeSel::Index((a + b) % d),
    }
}

fn check_bits<T>(dims: &[usize], ranks: &[usize], sels: &[ModeSel], cache: bool)
where
    T: IoScalar + Into<f64>,
{
    let tucker = synthetic_store::<T>(dims, ranks);
    let full = tucker.reconstruct();
    let q = Query { sel: sels.to_vec() };
    q.validate(dims).expect("shaped selections are valid");
    let want = hyperslab(&full, &q.normalized(dims));

    let cfg = EngineConfig {
        cache_budget: if cache { 1 << 20 } else { 0 },
        order_policy: OrderPolicy::Exact,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(TuckerStore::from_tucker(tucker), cfg);
    // Twice: the second pass hits the cache when enabled, and must not
    // change a single bit.
    for pass in 0..2 {
        let out = engine.execute(&q).expect("valid query executes");
        assert_eq!(out.tensor.dims(), want.dims(), "pass {pass}: dims");
        for (i, (&g, &w)) in out.tensor.data().iter().zip(want.data()).enumerate() {
            let (g, w): (f64, f64) = (g.into(), w.into());
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "pass {pass} (cache={cache}): element {i} differs: {g:e} vs {w:e}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_reconstruct_bitwise((dims, ranks, raw) in raw_case()) {
        let sels: Vec<ModeSel> =
            raw.iter().zip(&dims).map(|(&r, &d)| shape_sel(r, d)).collect();
        for cache in [false, true] {
            check_bits::<f64>(&dims, &ranks, &sels, cache);
            check_bits::<f32>(&dims, &ranks, &sels, cache);
        }
    }

    #[test]
    fn cost_order_agrees_to_rounding((dims, ranks, raw) in raw_case()) {
        // The flop-minimizing order is NOT bit-identical, but must agree to
        // a tight relative tolerance.
        let sels: Vec<ModeSel> =
            raw.iter().zip(&dims).map(|(&r, &d)| shape_sel(r, d)).collect();
        let tucker = synthetic_store::<f64>(&dims, &ranks);
        let full = tucker.reconstruct();
        let q = Query { sel: sels };
        let want = hyperslab(&full, &q.normalized(&dims));
        let cfg = EngineConfig { order_policy: OrderPolicy::Cost, ..EngineConfig::default() };
        let mut engine = Engine::new(TuckerStore::from_tucker(tucker), cfg);
        let out = engine.execute(&q).expect("valid query executes");
        prop_assert_eq!(out.tensor.dims(), want.dims());
        let scale = want.data().iter().fold(1.0f64, |m, &v| m.max(v.abs()));
        for (&g, &w) in out.tensor.data().iter().zip(want.data()) {
            prop_assert!(
                (g - w).abs() <= 1e-12 * scale,
                "cost-order result too far: {} vs {}", g, w
            );
        }
    }
}

/// Each named query shape, checked explicitly (the proptest above covers
/// them statistically; this pins one deterministic witness per kind).
#[test]
fn every_query_kind_is_bit_exact() {
    let dims = vec![16usize, 9, 11];
    let ranks = vec![5usize, 4, 3];
    let cases = [
        ("3,4,5", "element"),
        ("*,4,5", "fiber"),
        ("*,4,*", "slice"),
        ("0:16:3,2:8,*", "strided"),
        ("2:9,1:5,3:8", "hyperslab"),
    ];
    for (spec, label) in cases {
        let q = Query::parse(spec).expect(label);
        let sels: Vec<ModeSel> = q.sel.clone();
        check_bits::<f64>(&dims, &ranks, &sels, true);
        check_bits::<f32>(&dims, &ranks, &sels, false);
    }
}
