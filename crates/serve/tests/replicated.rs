//! Property tests for the replicated tier.
//!
//! Two load-bearing guarantees, checked over random shard/replica layouts:
//!
//! 1. **Bit-identity** — a healthy tier answers every query CRC-identically
//!    to the single unsharded engine, for any layout and workload.
//! 2. **Chaos safety** — under arbitrary injected fault plans (crashes,
//!    drops, delays, payload corruption), the tier never hangs, never
//!    returns an answer whose CRC differs from ground truth, and every
//!    admitted query resolves to either a completion or a *typed* error.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;
use tucker_mpisim::FaultPlan;
use tucker_serve::workload::{synthetic_store, synthetic_trace, WorkloadConfig};
use tucker_serve::{
    Engine, EngineConfig, ObsConfig, Request, RetryPolicy, Router, RunConfig, ServeError,
    TierRunConfig, TuckerStore,
};

/// Ground-truth per-request CRCs from the unsharded engine.
fn baseline_crcs(wl: &WorkloadConfig, trace: &[Request]) -> BTreeMap<usize, u32> {
    let mut engine = Engine::new(
        TuckerStore::from_tucker(synthetic_store::<f64>(&wl.dims, &wl.ranks)),
        EngineConfig::default(),
    );
    let report = engine.run(trace, &RunConfig::default()).expect("baseline runs");
    assert_eq!(report.completions.len(), trace.len());
    report.completions.iter().map(|c| (c.index, c.crc)).collect()
}

fn workload(d0: usize, d1: usize, d2: usize, requests: usize, seed: u64) -> WorkloadConfig {
    let rank = |d: usize| (d / 2).clamp(2, 6);
    WorkloadConfig {
        dims: vec![d0, d1, d2],
        ranks: vec![rank(d0), rank(d1), rank(d2)],
        requests,
        seed,
        ..WorkloadConfig::default()
    }
}

/// Raw material for one injected fault; shaped against the layout in-body.
type RawFault = (usize, usize, u64, usize, u32);

fn layout_case() -> impl Strategy<Value = (usize, usize, usize, u64, usize, usize)> {
    // dims[0], dims[1], dims[2], trace seed, shards, replicas
    (8usize..32, 6usize..16, 5usize..12, 0u64..1 << 48, 1usize..4, 1usize..4)
}

fn fault_case() -> impl Strategy<Value = Vec<RawFault>> {
    // kind selector, rank raw, op, element raw, bit raw
    proptest::collection::vec((0usize..4, 0usize..64, 0u64..12, 0usize..512, 0u32..64), 0..7)
}

fn shape_plan(raw: &[RawFault], world: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(kind, rank, op, elem, bit) in raw {
        let rank = rank % world;
        plan = match kind {
            0 => plan.crash(rank, op),
            1 => plan.drop_msg(rank, op, 1),
            2 => plan.delay(rank, op, (op as f64 + 1.0) * 1e-4, Duration::ZERO),
            _ => plan.corrupt(rank, op, elem, bit),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A healthy tier of any layout is indistinguishable (to the CRC) from
    /// the unsharded engine.
    #[test]
    fn healthy_tier_matches_single_engine(
        (d0, d1, d2, seed, shards, replicas) in layout_case()
    ) {
        let shards = shards.min(d0);
        let wl = workload(d0, d1, d2, 24, seed);
        let trace = synthetic_trace(&wl);
        let truth = baseline_crcs(&wl, &trace);

        let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
        let mut router =
            Router::new(&tucker, shards, replicas, EngineConfig::default(), &FaultPlan::none());
        let report = router.run(&trace, &TierRunConfig::default());

        prop_assert!(report.failures.is_empty() && report.rejections.is_empty());
        prop_assert_eq!(report.completions.len(), trace.len());
        for c in &report.completions {
            prop_assert_eq!(c.crc, truth[&c.index], "request {} diverged", c.index);
        }
        prop_assert!(report.failover_recovery_vt.is_none());
    }

    /// Under arbitrary fault plans the tier degrades only in typed,
    /// CRC-safe ways: every query resolves, completions match ground truth
    /// bit-for-bit, failures are `ReplicasExhausted` or `Timeout`.
    #[test]
    fn chaos_never_returns_wrong_bits_or_untyped_errors(
        (d0, d1, d2, seed, shards, replicas) in layout_case(),
        raw_faults in fault_case(),
    ) {
        let shards = shards.min(d0);
        let wl = workload(d0, d1, d2, 24, seed);
        let trace = synthetic_trace(&wl);
        let truth = baseline_crcs(&wl, &trace);

        let world = shards * replicas;
        let plan = shape_plan(&raw_faults, world);
        let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
        let mut router =
            Router::new(&tucker, shards, replicas, EngineConfig::default(), &plan);
        // A tight retry budget keeps adversarial plans from inflating the
        // run; the tier must still resolve every query, typed.
        let rc = TierRunConfig {
            retry: RetryPolicy { max_attempts: 8, ..RetryPolicy::default() },
            ..TierRunConfig::default()
        };
        let report = router.run(&trace, &rc);

        // Every admitted query resolves exactly once (no hangs, no loss).
        prop_assert!(report.rejections.is_empty(), "unbounded queue rejects nothing");
        prop_assert_eq!(
            report.completions.len() + report.failures.len(),
            trace.len(),
            "every query must resolve"
        );
        let mut seen = vec![false; trace.len()];
        for c in &report.completions {
            prop_assert!(!seen[c.index]);
            seen[c.index] = true;
            // The headline: a served answer is bit-identical to ground
            // truth no matter what the wire did.
            prop_assert_eq!(c.crc, truth[&c.index], "request {} corrupted", c.index);
        }
        for f in &report.failures {
            prop_assert!(!seen[f.index]);
            seen[f.index] = true;
            prop_assert!(
                matches!(
                    f.error,
                    ServeError::ReplicasExhausted { .. } | ServeError::Timeout { .. }
                ),
                "untyped or unexpected failure: {}",
                f.error
            );
        }
        prop_assert!(seen.iter().all(|&s| s));

        // Crashes recorded in the registry are exactly the `Crash` faults
        // that actually fired; failures may only happen when faults exist.
        if plan.is_empty() {
            prop_assert!(report.failures.is_empty());
            prop_assert!(router.tier().registry().crashed_ranks().is_empty());
        }
        // Virtual clocks stay finite: no runaway backoff loops.
        prop_assert!(report.makespan.is_finite());
    }

    /// Observability is a pure side-channel: for any layout and fault plan,
    /// runs with tracing off, tracing only, logging only, and both produce
    /// bit-identical completions, the same typed failures, and the same
    /// virtual timeline — while the instrumented runs actually record.
    #[test]
    fn observability_on_off_is_bit_identical(
        (d0, d1, d2, seed, shards, replicas) in layout_case(),
        raw_faults in fault_case(),
    ) {
        let shards = shards.min(d0);
        let wl = workload(d0, d1, d2, 24, seed);
        let trace = synthetic_trace(&wl);
        let world = shards * replicas;
        let plan = shape_plan(&raw_faults, world);
        let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
        let rc = TierRunConfig {
            retry: RetryPolicy { max_attempts: 8, ..RetryPolicy::default() },
            ..TierRunConfig::default()
        };

        let run = |cfg: ObsConfig| {
            let mut router =
                Router::new(&tucker, shards, replicas, EngineConfig::default(), &plan);
            router.enable_obs(cfg);
            let report = router.run(&trace, &rc);
            let crcs: BTreeMap<usize, u32> =
                report.completions.iter().map(|c| (c.index, c.crc)).collect();
            let failed: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
            let lat: Vec<u64> = report
                .completions
                .iter()
                .map(|c| (c.finish - c.arrival).to_bits())
                .collect();
            let spans = router.observer().span_count();
            let logs = router.observer().log_lines().len();
            (crcs, failed, lat, report.makespan.to_bits(), spans, logs)
        };

        let off = run(ObsConfig::default());
        let tracing_only = run(ObsConfig { tracing: true, ..ObsConfig::default() });
        let logging_only = run(ObsConfig { logging: true, ..ObsConfig::default() });
        let full = run(ObsConfig::full());

        for on in [&tracing_only, &logging_only, &full] {
            prop_assert_eq!(&on.0, &off.0, "completion CRCs must not move");
            prop_assert_eq!(&on.1, &off.1, "failure set must not move");
            prop_assert_eq!(&on.2, &off.2, "latency bits must not move");
            prop_assert_eq!(on.3, off.3, "makespan bits must not move");
        }
        prop_assert_eq!(off.4, 0);
        prop_assert_eq!(off.5, 0);
        prop_assert!(tracing_only.4 > 0, "tracing run must record spans");
        prop_assert_eq!(tracing_only.5, 0, "tracing alone emits no log");
        prop_assert_eq!(logging_only.4, 0, "logging alone records no spans");
        prop_assert!(full.4 > 0 && full.5 > 0);
    }
}
