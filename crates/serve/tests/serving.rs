//! Serving-loop invariants: typed overload rejection with zero lost or
//! corrupted in-flight queries, graceful drain, and corrupted-store
//! rejection at open time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use tucker_core::tucker_io::TuckerIoError;
use tucker_serve::workload::{synthetic_store, synthetic_trace, WorkloadConfig};
use tucker_serve::{
    Engine, EngineConfig, Request, RunConfig, ServeError, TuckerStore,
};

fn small_workload() -> WorkloadConfig {
    WorkloadConfig {
        dims: vec![48, 20, 16],
        ranks: vec![10, 6, 5],
        requests: 160,
        ..WorkloadConfig::default()
    }
}

fn engine_for(wl: &WorkloadConfig) -> Engine<f64> {
    Engine::new(
        TuckerStore::from_tucker(synthetic_store::<f64>(&wl.dims, &wl.ranks)),
        EngineConfig::default(),
    )
}

#[test]
fn overload_rejects_typed_and_preserves_admitted_results() {
    let wl = small_workload();
    let trace = synthetic_trace(&wl);
    // Ground truth CRCs from an uncontended run that admits everything.
    let mut calm = engine_for(&wl);
    let calm_report = calm
        .run(&trace, &RunConfig { workers: 4, queue_capacity: usize::MAX, batch_limit: 8, tenant_quota: None })
        .expect("calm run");
    assert_eq!(calm_report.completions.len(), trace.len());
    assert!(calm_report.rejections.is_empty());
    let truth: BTreeMap<usize, u32> =
        calm_report.completions.iter().map(|c| (c.index, c.crc)).collect();

    // Burst the same queries at one slow worker behind a 4-deep queue.
    let burst: Vec<Request> = trace
        .iter()
        .map(|r| Request::new(r.arrival * 0.01, r.query.clone()))
        .collect();
    let mut hot = engine_for(&wl);
    let report = hot
        .run(&burst, &RunConfig { workers: 1, queue_capacity: 4, batch_limit: 4, tenant_quota: None })
        .expect("overloaded run still completes");

    assert!(!report.rejections.is_empty(), "the burst must overload the queue");
    // Every request is accounted for exactly once: completed or rejected.
    assert_eq!(report.completions.len() + report.rejections.len(), trace.len());
    let mut seen = vec![false; trace.len()];
    for c in &report.completions {
        assert!(!seen[c.index]);
        seen[c.index] = true;
    }
    for r in &report.rejections {
        assert!(!seen[r.index]);
        seen[r.index] = true;
        // Rejections are the typed backpressure error, with real capacity info.
        match &r.error {
            ServeError::Overloaded { queued, capacity } => {
                assert_eq!(*capacity, 4);
                assert!(*queued >= *capacity);
            }
            other => panic!("expected Overloaded, got {other}"),
        }
    }
    assert!(seen.iter().all(|&s| s), "no request may be silently dropped");
    // Zero corrupted in-flight queries: every admitted result's payload CRC
    // matches the uncontended ground truth.
    for c in &report.completions {
        assert_eq!(truth[&c.index], c.crc, "request {} corrupted under load", c.index);
    }
    // Metrics agree with the report.
    assert_eq!(
        hot.metrics().counter("serve/query/rejected"),
        report.rejections.len() as u64
    );
}

#[test]
fn drain_completes_everything_after_arrivals_stop() {
    let wl = small_workload();
    let trace = synthetic_trace(&wl);
    // All requests arrive at once at a single worker with room to queue:
    // the loop must drain the whole backlog after the last arrival.
    let all_at_once: Vec<Request> =
        trace.iter().map(|r| Request::new(0.0, r.query.clone())).collect();
    let mut engine = engine_for(&wl);
    let report = engine
        .run(&all_at_once, &RunConfig { workers: 1, queue_capacity: usize::MAX, batch_limit: 8, tenant_quota: None })
        .expect("drain run");
    assert!(report.rejections.is_empty());
    assert_eq!(report.completions.len(), trace.len());
    // Virtual time: the worker is busy back-to-back, so the last finish
    // equals total busy time.
    let last = report.completions.iter().map(|c| c.finish).fold(0.0f64, f64::max);
    assert!((last - report.busy_seconds).abs() <= 1e-9 * report.busy_seconds.max(1.0));
    // Batching happened (the trace shares hot blocks heavily).
    assert!(report.completions.iter().any(|c| c.batch_size > 1));
}

#[test]
fn corrupted_store_is_rejected_at_open_with_section_name() {
    static UNIQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "serve-corrupt-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.tkr");
    let tucker = synthetic_store::<f64>(&[12, 10, 8], &[4, 3, 3]);
    tucker_core::write_tucker(&path, &tucker).unwrap();

    // Pristine file opens and serves.
    assert!(TuckerStore::<f64>::open(&path).is_ok());

    // Flip one byte deep in the payload region: open must fail with a typed
    // checksum error naming a section — never a panic or silent garbage.
    let mut bytes = std::fs::read(&path).unwrap();
    let victim = bytes.len() - 17;
    bytes[victim] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match TuckerStore::<f64>::open(&path) {
        Err(ServeError::Io(TuckerIoError::ChecksumMismatch { section, stored, computed })) => {
            assert_ne!(stored, computed);
            let name = section.to_string();
            assert!(!name.is_empty(), "section must be nameable: {name}");
        }
        Err(other) => panic!("expected ChecksumMismatch, got {other}"),
        Ok(_) => panic!("corrupted store must not open"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_queue_run_matches_direct_execution() {
    // The serving loop is a scheduler, not a transformer: results must be
    // exactly what Engine::execute returns for each query.
    let wl = WorkloadConfig { requests: 40, ..small_workload() };
    let trace = synthetic_trace(&wl);
    let mut served = engine_for(&wl);
    let report = served
        .run(&trace, &RunConfig { workers: 2, queue_capacity: usize::MAX, batch_limit: 6, tenant_quota: None })
        .expect("run");
    let mut direct = engine_for(&wl);
    for c in &report.completions {
        let out = direct.execute(&trace[c.index].query).expect("direct");
        assert_eq!(tucker_serve::tensor_crc(&out.tensor), c.crc);
        assert_eq!(out.tensor.len(), c.elems);
    }
}
