//! Query planning: choose the mode-contraction order and predict its cost.
//!
//! A query reconstructs `G ×_0 U_0[s_0] ×_1 U_1[s_1] ⋯` where `U_n[s_n]`
//! keeps only the selected factor rows. The modes can be contracted in any
//! order; contracting a mode changes its extent from the stored rank `R_n`
//! to the selected count `q_n`, so order determines every intermediate size
//! — the same flop-count structure as the §3.5 TTM cost model in
//! `tucker_core::model` (`2·q·R·∏(other extents)` per mode, γ seconds per
//! flop). The planner minimizes total predicted flops: exhaustively for
//! tensors up to 6 modes, greedily (largest shrink ratio `R_n/q_n` first)
//! beyond that.
//!
//! Bit-identity caveat: floating-point TTM chains are only bit-identical to
//! [`TuckerTensor::reconstruct`](tucker_core::TuckerTensor::reconstruct)
//! when contracted in the *same* (ascending) mode order. The engine
//! therefore executes [`OrderPolicy::Exact`] (ascending) by default and
//! treats the cost-minimizing order as an opt-in ([`OrderPolicy::Cost`])
//! whose results agree to rounding, not to the bit. The optimal order and
//! its predicted saving are always computed for observability either way.

/// Which contraction order the engine executes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderPolicy {
    /// Ascending mode order — bit-identical to full reconstruction.
    #[default]
    Exact,
    /// Cost-model-optimal order — fewest flops, equal to rounding only.
    Cost,
}

/// A planned query execution.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Mode order actually executed.
    pub order: Vec<usize>,
    /// Predicted flops of the executed order.
    pub flops: f64,
    /// Cost-optimal order (= `order` under [`OrderPolicy::Cost`]).
    pub best_order: Vec<usize>,
    /// Predicted flops of the optimal order.
    pub best_flops: f64,
    /// Largest intermediate size (elements) along the executed order.
    pub peak_elems: usize,
}

/// Predicted flops of contracting modes in `order`, where mode `n` shrinks
/// extent `ranks[n]` → `counts[n]`. Mirrors the §3.5 TTM term: each
/// contraction is a `(q_n × R_n) · (R_n × rest)` GEMM, `2·q·R·rest` flops.
fn chain_flops(ranks: &[usize], counts: &[usize], order: &[usize]) -> (f64, usize) {
    let mut extents: Vec<usize> = ranks.to_vec();
    let mut flops = 0.0;
    let mut peak = extents.iter().product::<usize>();
    for &n in order {
        let rest: usize = extents.iter().enumerate().filter(|&(m, _)| m != n).map(|(_, &e)| e).product();
        flops += 2.0 * counts[n] as f64 * ranks[n] as f64 * rest as f64;
        extents[n] = counts[n];
        peak = peak.max(extents.iter().product());
    }
    (flops, peak)
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for pos in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(pos, n - 1);
            out.push(p);
        }
    }
    out
}

/// Plan a query: `ranks` are the stored core dimensions, `counts` the
/// per-mode selected row counts.
pub fn plan(ranks: &[usize], counts: &[usize], policy: OrderPolicy) -> QueryPlan {
    assert_eq!(ranks.len(), counts.len(), "plan: rank/count length mismatch");
    let n = ranks.len();
    let ascending: Vec<usize> = (0..n).collect();
    let best_order = if n <= 6 {
        permutations(n)
            .into_iter()
            .min_by(|a, b| {
                let fa = chain_flops(ranks, counts, a).0;
                let fb = chain_flops(ranks, counts, b).0;
                // Flop totals are exact small-integer sums in f64; ties break
                // lexicographically for determinism.
                fa.partial_cmp(&fb).unwrap().then_with(|| a.cmp(b))
            })
            .unwrap_or_default()
    } else {
        // Greedy: contract the biggest shrinkers (R_n/q_n) first; ties by
        // mode index for determinism.
        let mut order = ascending.clone();
        order.sort_by(|&a, &b| {
            let ra = ranks[a] as f64 / counts[a] as f64;
            let rb = ranks[b] as f64 / counts[b] as f64;
            rb.partial_cmp(&ra).unwrap().then_with(|| a.cmp(&b))
        });
        order
    };
    let (best_flops, _) = chain_flops(ranks, counts, &best_order);
    let order = match policy {
        OrderPolicy::Exact => ascending,
        OrderPolicy::Cost => best_order.clone(),
    };
    let (flops, peak_elems) = chain_flops(ranks, counts, &order);
    QueryPlan { order, flops, best_order, best_flops, peak_elems }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_policy_keeps_ascending_order() {
        let p = plan(&[10, 10, 10], &[1, 10, 10], OrderPolicy::Exact);
        assert_eq!(p.order, vec![0, 1, 2]);
        assert!(p.flops > 0.0);
    }

    #[test]
    fn cost_policy_contracts_biggest_shrinker_first() {
        // Mode 2 shrinks 10 → 1; contracting it first minimizes the rest.
        let p = plan(&[10, 10, 10], &[10, 10, 1], OrderPolicy::Cost);
        assert_eq!(p.order[0], 2);
        assert!(p.best_flops <= plan(&[10, 10, 10], &[10, 10, 1], OrderPolicy::Exact).flops);
    }

    #[test]
    fn exhaustive_beats_or_ties_every_listed_order() {
        let ranks = [6, 9, 4, 7];
        let counts = [3, 1, 4, 2];
        let p = plan(&ranks, &counts, OrderPolicy::Cost);
        for order in permutations(4) {
            assert!(p.best_flops <= chain_flops(&ranks, &counts, &order).0 + 1e-9);
        }
    }

    #[test]
    fn greedy_kicks_in_past_six_modes() {
        let ranks = vec![4usize; 7];
        let mut counts = vec![4usize; 7];
        counts[5] = 1;
        let p = plan(&ranks, &counts, OrderPolicy::Cost);
        assert_eq!(p.order[0], 5, "greedy should front the only shrinking mode");
    }

    #[test]
    fn flop_model_matches_hand_count() {
        // Single mode: 2·q·R (a q×R by R dot-product row).
        let (f, peak) = chain_flops(&[8], &[3], &[0]);
        assert_eq!(f, 2.0 * 3.0 * 8.0);
        assert_eq!(peak, 8);
    }
}
