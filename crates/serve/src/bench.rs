//! The `bench serve` harness: naive-vs-batched serving on a seeded
//! synthetic workload, in virtual time.
//!
//! Three runs over the same request trace:
//!
//! 1. **naive** — cache off, batch limit 1: every query contracts its own
//!    mode-0 partial.
//! 2. **batched** — cache on, batching on: partials are computed once per
//!    aligned block and shared across the batch and the cache.
//! 3. **overload** — batched config squeezed through one worker and a tiny
//!    admission queue: exercises typed [`ServeError::Overloaded`]
//!    rejections (none of which may corrupt admitted results).
//!
//! Every admitted request's result is CRC-fingerprinted; the naive and
//! batched fingerprints must agree request-for-request (the batched path is
//! bit-identical by design), and the overload run's completions must be a
//! CRC-subset of the batched ones. All clocks are modeled
//! ([`CostModel`](tucker_mpisim::CostModel)), so the emitted numbers are
//! machine-independent.

use crate::engine::{Engine, EngineConfig, Request, RunConfig, RunReport};
use crate::error::ServeError;
use crate::obs::ObsConfig;
use crate::router::{Router, TierReport, TierRunConfig};
use crate::store::TuckerStore;
use crate::workload::{assign_tenants, synthetic_store, synthetic_trace, WorkloadConfig};
use std::collections::BTreeMap;
use std::time::Instant;
use tucker_mpisim::FaultPlan;

/// Everything `BENCH_pr5.json` records.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Synthetic tensor dimensions.
    pub shape: Vec<usize>,
    /// Stored ranks.
    pub ranks: Vec<usize>,
    /// Requests in the trace.
    pub queries: usize,
    /// Worker-busy seconds, naive run.
    pub naive_busy_s: f64,
    /// Worker-busy seconds, batched run.
    pub batched_busy_s: f64,
    /// `naive_busy_s / batched_busy_s` — the gated number.
    pub speedup: f64,
    /// Median end-to-end modeled latency, batched run, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile modeled latency, batched run, milliseconds.
    pub p99_ms: f64,
    /// Completed queries per modeled second, batched run.
    pub throughput_qps: f64,
    /// Mean batch size in the batched run.
    pub mean_batch: f64,
    /// Cache hits in the batched run.
    pub cache_hits: u64,
    /// Cache misses in the batched run.
    pub cache_misses: u64,
    /// Admitted-and-completed requests in the overload run.
    pub overload_completed: usize,
    /// Typed `Overloaded` rejections in the overload run.
    pub overload_rejected: usize,
}

impl ServeBenchResult {
    /// Deterministic JSON (keys in fixed order).
    pub fn to_json(&self) -> String {
        let ints = |v: &[usize]| {
            v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            concat!(
                "{{\"bench\":\"serve\",\"shape\":[{shape}],\"ranks\":[{ranks}],",
                "\"queries\":{queries},\"naive_busy_s\":{naive:.9},",
                "\"batched_busy_s\":{batched:.9},\"speedup\":{speedup:.4},",
                "\"p50_ms\":{p50:.6},\"p99_ms\":{p99:.6},",
                "\"throughput_qps\":{qps:.3},\"mean_batch\":{mb:.4},",
                "\"cache_hits\":{hits},\"cache_misses\":{misses},",
                "\"overload_completed\":{oc},\"overload_rejected\":{or}}}"
            ),
            shape = ints(&self.shape),
            ranks = ints(&self.ranks),
            queries = self.queries,
            naive = self.naive_busy_s,
            batched = self.batched_busy_s,
            speedup = self.speedup,
            p50 = self.p50_ms,
            p99 = self.p99_ms,
            qps = self.throughput_qps,
            mb = self.mean_batch,
            hits = self.cache_hits,
            misses = self.cache_misses,
            oc = self.overload_completed,
            or = self.overload_rejected,
        )
    }
}

fn crc_by_index(report: &RunReport) -> BTreeMap<usize, u32> {
    report.completions.iter().map(|c| (c.index, c.crc)).collect()
}

/// Run the serving benchmark. `quick` shrinks the store and trace for CI
/// smoke runs; the full configuration backs the committed artifact.
pub fn run_serve_bench(quick: bool) -> Result<ServeBenchResult, ServeError> {
    let wl = if quick {
        WorkloadConfig {
            dims: vec![48, 40, 36],
            ranks: vec![12, 10, 9],
            requests: 120,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig::default()
    };
    let trace = synthetic_trace(&wl);
    let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
    // One worker for both strategies: the queue backs up enough for real
    // batches to form, and busy-time is an apples-to-apples compute total.
    let open_queue = RunConfig { workers: 1, queue_capacity: usize::MAX, batch_limit: 16, tenant_quota: None };

    // Naive: cache off, batch of one.
    let mut naive = Engine::new(
        TuckerStore::from_tucker(tucker.clone()),
        EngineConfig { cache_budget: 0, ..EngineConfig::default() },
    );
    let naive_report =
        naive.run(&trace, &RunConfig { batch_limit: 1, ..open_queue })?;
    assert_eq!(naive_report.completions.len(), trace.len(), "open queue drops nothing");

    // Batched: cache + batching on.
    let mut batched =
        Engine::new(TuckerStore::from_tucker(tucker.clone()), EngineConfig::default());
    let batched_report = batched.run(&trace, &open_queue)?;
    assert_eq!(batched_report.completions.len(), trace.len());

    // Bit-identity across strategies: every request's payload CRC agrees.
    let naive_crc = crc_by_index(&naive_report);
    let batched_crc = crc_by_index(&batched_report);
    assert_eq!(naive_crc, batched_crc, "batched results must be bit-identical to naive");

    // Overload: the same queries arriving 50× faster at one worker behind
    // a tiny queue — must reject (typed), never corrupt admitted work.
    let burst: Vec<_> = trace
        .iter()
        .map(|r| crate::engine::Request::new(r.arrival * 0.02, r.query.clone()))
        .collect();
    let mut overload =
        Engine::new(TuckerStore::from_tucker(tucker), EngineConfig::default());
    let overload_report = overload
        .run(&burst, &RunConfig { workers: 1, queue_capacity: 8, batch_limit: 16, tenant_quota: None })?;
    assert_eq!(
        overload_report.completions.len() + overload_report.rejections.len(),
        trace.len(),
        "every request either completes or is rejected"
    );
    for c in &overload_report.completions {
        assert_eq!(batched_crc[&c.index], c.crc, "admitted results survive overload intact");
    }
    for r in &overload_report.rejections {
        assert!(
            matches!(r.error, ServeError::Overloaded { .. }),
            "rejections are typed Overloaded"
        );
    }

    let stats = batched.cache_stats();
    let n = batched_report.completions.len().max(1);
    let mean_batch = batched_report.completions.iter().map(|c| c.batch_size).sum::<usize>()
        as f64
        / n as f64;
    let speedup = naive_report.busy_seconds / batched_report.busy_seconds.max(1e-30);
    Ok(ServeBenchResult {
        shape: wl.dims.clone(),
        ranks: wl.ranks.clone(),
        queries: trace.len(),
        naive_busy_s: naive_report.busy_seconds,
        batched_busy_s: batched_report.busy_seconds,
        speedup,
        // The gate fails loudly if a run somehow completed nothing instead
        // of reporting a bogus p99 = 0.
        p50_ms: batched_report.latency_quantile(0.50).expect("batched run completed requests")
            * 1e3,
        p99_ms: batched_report.latency_quantile(0.99).expect("batched run completed requests")
            * 1e3,
        throughput_qps: batched_report.throughput(),
        mean_batch,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        overload_completed: overload_report.completions.len(),
        overload_rejected: overload_report.rejections.len(),
    })
}

/// Everything `BENCH_pr7.json` records: the replicated tier under three
/// regimes — healthy, one replica crashed mid-workload, and overload with
/// tenants and priorities.
#[derive(Clone, Debug)]
pub struct FailoverBenchResult {
    /// Synthetic tensor dimensions.
    pub shape: Vec<usize>,
    /// Stored ranks.
    pub ranks: Vec<usize>,
    /// Requests in the trace.
    pub queries: usize,
    /// Mode-0 shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Median latency, healthy tier, milliseconds.
    pub healthy_p50_ms: f64,
    /// 99th-percentile latency, healthy tier, milliseconds.
    pub healthy_p99_ms: f64,
    /// Completed queries per modeled second, healthy tier.
    pub healthy_qps: f64,
    /// Admitted queries lost in the failover run — the headline gate: 0.
    pub failover_lost: usize,
    /// Whether every failover-run result was CRC-equal to the unsharded
    /// engine's answer for the same request.
    pub failover_crc_identical: bool,
    /// Worst failover recovery (finish − first failed attempt), virtual
    /// seconds; 0 when the injected plan never fired.
    pub failover_recovery_vt_s: f64,
    /// Failed attempts that were retried elsewhere in the failover run.
    pub failovers: u64,
    /// World ranks dead at the end of the failover run.
    pub dead_ranks: Vec<usize>,
    /// Completions in the overload run.
    pub overload_completed: usize,
    /// Typed rejections (`Overloaded` + `QuotaExceeded`) in the overload run.
    pub overload_rejected: usize,
    /// Low-priority requests evicted by high-priority arrivals.
    pub overload_shed_low: u64,
    /// Typed per-tenant quota rejections.
    pub overload_quota_rejected: u64,
    /// 99th-percentile latency of *admitted* traffic under overload,
    /// milliseconds — the p99-under-overload gate.
    pub overload_p99_ms: f64,
}

impl FailoverBenchResult {
    /// Deterministic JSON (keys in fixed order).
    pub fn to_json(&self) -> String {
        let ints = |v: &[usize]| {
            v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            concat!(
                "{{\"bench\":\"failover\",\"shape\":[{shape}],\"ranks\":[{ranks}],",
                "\"queries\":{queries},\"shards\":{shards},\"replicas\":{replicas},",
                "\"healthy_p50_ms\":{hp50:.6},\"healthy_p99_ms\":{hp99:.6},",
                "\"healthy_qps\":{hqps:.3},\"failover_lost\":{lost},",
                "\"failover_crc_identical\":{crc},",
                "\"failover_recovery_vt_s\":{rec:.9},\"failovers\":{fo},",
                "\"dead_ranks\":[{dead}],\"overload_completed\":{oc},",
                "\"overload_rejected\":{or},\"overload_shed_low\":{shed},",
                "\"overload_quota_rejected\":{quota},\"overload_p99_ms\":{op99:.6}}}"
            ),
            shape = ints(&self.shape),
            ranks = ints(&self.ranks),
            queries = self.queries,
            shards = self.shards,
            replicas = self.replicas,
            hp50 = self.healthy_p50_ms,
            hp99 = self.healthy_p99_ms,
            hqps = self.healthy_qps,
            lost = self.failover_lost,
            crc = self.failover_crc_identical,
            rec = self.failover_recovery_vt_s,
            fo = self.failovers,
            dead = ints(&self.dead_ranks),
            oc = self.overload_completed,
            or = self.overload_rejected,
            shed = self.overload_shed_low,
            quota = self.overload_quota_rejected,
            op99 = self.overload_p99_ms,
        )
    }
}

/// Run the replicated-tier benchmark behind `BENCH_pr7.json`.
///
/// Four runs over the same seeded trace:
///
/// 1. **baseline** — the unsharded engine, for per-request CRC ground truth;
/// 2. **healthy** — the `shards × replicas` tier, fault-free: must complete
///    everything bit-identically;
/// 3. **failover** — the same tier with `plan` armed (default: crash one
///    replica mid-workload): zero admitted queries may be lost and every
///    answer must stay CRC-identical to the baseline;
/// 4. **overload** — the healthy tier fed the trace 50× faster through a
///    tiny queue with per-tenant quotas and a low-priority mix: sheds typed,
///    never corrupts admitted work.
pub fn run_failover_bench(
    quick: bool,
    shards: usize,
    replicas: usize,
    plan: Option<&FaultPlan>,
) -> Result<FailoverBenchResult, ServeError> {
    let wl = if quick {
        WorkloadConfig {
            dims: vec![48, 40, 36],
            ranks: vec![12, 10, 9],
            requests: 120,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig::default()
    };
    assert!(shards >= 1 && replicas >= 1, "need at least one shard and replica");
    let trace = synthetic_trace(&wl);
    let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);

    // Baseline: per-request CRC ground truth from the unsharded engine.
    let mut single =
        Engine::new(TuckerStore::from_tucker(tucker.clone()), EngineConfig::default());
    let single_report = single.run(&trace, &RunConfig::default())?;
    let baseline = crc_by_index(&single_report);

    // Healthy tier: everything completes, bit-identically.
    let mut healthy =
        Router::new(&tucker, shards, replicas, EngineConfig::default(), &FaultPlan::none());
    let healthy_report = healthy.run(&trace, &TierRunConfig::default());
    assert_eq!(healthy_report.completions.len(), trace.len(), "healthy tier drops nothing");
    assert!(healthy_report.failures.is_empty() && healthy_report.rejections.is_empty());
    for c in &healthy_report.completions {
        assert_eq!(baseline[&c.index], c.crc, "healthy tier must be bit-identical");
    }

    // Failover: kill one replica mid-workload (or run the caller's plan).
    let world = shards * replicas;
    let default_plan = FaultPlan::new().crash(1 % world, 2);
    let plan = plan.unwrap_or(&default_plan);
    let mut faulty = Router::new(&tucker, shards, replicas, EngineConfig::default(), plan);
    let failover_report = faulty.run(&trace, &TierRunConfig::default());
    let failover_lost = trace.len() - failover_report.completions.len();
    let failover_crc_identical =
        failover_report.completions.iter().all(|c| baseline[&c.index] == c.crc);
    let dead_ranks = faulty.tier().registry().crashed_ranks();

    // Overload: 500× faster arrivals, 4 tenants, 30% low-priority traffic,
    // a tiny queue, and per-tenant quotas. The tier has `shards × replicas`
    // workers, so the squeeze is proportionally harder than the
    // single-engine overload run.
    let mut burst: Vec<Request> = trace
        .iter()
        .map(|r| Request::new(r.arrival * 0.002, r.query.clone()))
        .collect();
    assign_tenants(&mut burst, 4, 0.3, wl.seed);
    let mut over =
        Router::new(&tucker, shards, replicas, EngineConfig::default(), &FaultPlan::none());
    let overload_rc =
        TierRunConfig { queue_capacity: 4, tenant_quota: Some(2), ..TierRunConfig::default() };
    let overload_report = over.run(&burst, &overload_rc);
    assert!(overload_report.failures.is_empty(), "a healthy tier cannot fail queries");
    assert_eq!(
        overload_report.completions.len() + overload_report.rejections.len(),
        trace.len(),
        "every request either completes or is rejected typed"
    );
    for c in &overload_report.completions {
        assert_eq!(baseline[&c.index], c.crc, "admitted results survive overload intact");
    }

    let expect = "completed requests exist";
    Ok(FailoverBenchResult {
        shape: wl.dims.clone(),
        ranks: wl.ranks.clone(),
        queries: trace.len(),
        shards,
        replicas,
        healthy_p50_ms: healthy_report.latency_quantile(0.50).expect(expect) * 1e3,
        healthy_p99_ms: healthy_report.latency_quantile(0.99).expect(expect) * 1e3,
        healthy_qps: healthy_report.throughput(),
        failover_lost,
        failover_crc_identical,
        failover_recovery_vt_s: failover_report.failover_recovery_vt.unwrap_or(0.0),
        failovers: failover_report.completions.iter().map(|c| c.failovers as u64).sum(),
        dead_ranks,
        overload_completed: overload_report.completions.len(),
        overload_rejected: overload_report.rejections.len(),
        overload_shed_low: over.metrics().counter("serve/query/shed_low"),
        overload_quota_rejected: over.metrics().counter("serve/query/quota_rejected"),
        overload_p99_ms: overload_report.latency_quantile(0.99).expect(expect) * 1e3,
    })
}

/// Run the failover-bench scenario once on a fresh `shards × replicas`
/// tier with the given observability configuration, returning the router
/// (for its metrics, observer, and trace lanes) alongside the report.
///
/// This is the shared workload behind `serve-bench --trace`, `tucker
/// slo-report`, and [`run_observability_bench`]: the quick shape is
/// `48×40×36` at ranks `12×10×9` with 120 requests, the full shape is the
/// workload default. `plan = None` arms the default mid-workload crash of
/// rank `1 % world` so every artifact produced from this workload contains
/// a real failover story.
pub fn run_tier_workload(
    quick: bool,
    shards: usize,
    replicas: usize,
    plan: Option<&FaultPlan>,
    obs: ObsConfig,
) -> Result<(Router<f64>, TierReport), ServeError> {
    let wl = if quick {
        WorkloadConfig {
            dims: vec![48, 40, 36],
            ranks: vec![12, 10, 9],
            requests: 120,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig::default()
    };
    assert!(shards >= 1 && replicas >= 1, "need at least one shard and replica");
    let mut trace = synthetic_trace(&wl);
    assign_tenants(&mut trace, 4, 0.3, wl.seed);
    let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
    let world = shards * replicas;
    let default_plan = FaultPlan::new().crash(1 % world, 2);
    let plan = plan.unwrap_or(&default_plan);
    let mut router = Router::new(&tucker, shards, replicas, EngineConfig::default(), plan);
    router.enable_obs(obs);
    let report = router.run(&trace, &TierRunConfig::default());
    Ok((router, report))
}

/// Everything `BENCH_pr9.json` records: the cost of full observability
/// (tracing + structured logging at `debug`) on the serving loop.
#[derive(Clone, Debug)]
pub struct ObservabilityBenchResult {
    /// Synthetic tensor dimensions.
    pub shape: Vec<usize>,
    /// Stored ranks.
    pub ranks: Vec<usize>,
    /// Requests in the trace.
    pub queries: usize,
    /// Median wall-clock per run, observability off, milliseconds.
    pub off_ms: f64,
    /// Median wall-clock per run, observability on, milliseconds.
    pub on_ms: f64,
    /// `(median paired on/off ratio − 1) × 100` — the gated number, < 2%.
    pub overhead_pct: f64,
    /// Spans recorded by the instrumented run.
    pub spans: u64,
    /// Structured log lines emitted by the instrumented run.
    pub log_lines: usize,
    /// Whether every completion CRC agreed between the off and on runs.
    pub bit_identical: bool,
}

impl ObservabilityBenchResult {
    /// Deterministic JSON (keys in fixed order). `off_ms`/`on_ms`/
    /// `overhead_pct` are wall-clock and therefore machine-dependent; the
    /// gate is the paired ratio, which is stable across machines.
    pub fn to_json(&self) -> String {
        let ints = |v: &[usize]| {
            v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            concat!(
                "{{\"bench\":\"observability\",\"shape\":[{shape}],\"ranks\":[{ranks}],",
                "\"queries\":{queries},\"off_ms\":{off:.4},\"on_ms\":{on:.4},",
                "\"overhead_pct\":{ov:.4},\"spans\":{spans},",
                "\"log_lines\":{lines},\"bit_identical\":{bit}}}"
            ),
            shape = ints(&self.shape),
            ranks = ints(&self.ranks),
            queries = self.queries,
            off = self.off_ms,
            on = self.on_ms,
            ov = self.overhead_pct,
            spans = self.spans,
            lines = self.log_lines,
            bit = self.bit_identical,
        )
    }
}

/// Measure the serving-loop cost of observability on the 2×2 failover
/// workload: paired off/on rounds (off first, then on, per round) with a
/// discarded warmup pair; the reported overhead is the *median* of the
/// per-round on/off wall-clock ratios, which cancels machine speed and
/// most scheduler noise. Results must be bit-identical between the two
/// configurations — tracing and logging are pure side-buffers.
pub fn run_observability_bench(quick: bool) -> Result<ObservabilityBenchResult, ServeError> {
    let (shards, replicas) = (2, 2);
    let rounds = if quick { 3 } else { 25 };

    // Warmup pair: page in the store, warm allocators and branch caches.
    let (_, warm_off) = run_tier_workload(quick, shards, replicas, None, ObsConfig::default())?;
    let (_, warm_on) = run_tier_workload(quick, shards, replicas, None, ObsConfig::full())?;
    assert_eq!(warm_off.completions.len(), warm_on.completions.len());

    let mut ratios = Vec::with_capacity(rounds);
    let mut offs = Vec::with_capacity(rounds);
    let mut ons = Vec::with_capacity(rounds);
    let mut last_on: Option<(Router<f64>, TierReport)> = None;
    let mut baseline: Option<BTreeMap<usize, u32>> = None;
    let mut bit_identical = true;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let (_, off_report) =
            run_tier_workload(quick, shards, replicas, None, ObsConfig::default())?;
        let off_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let on = run_tier_workload(quick, shards, replicas, None, ObsConfig::full())?;
        let on_s = t1.elapsed().as_secs_f64();

        let off_crc: BTreeMap<usize, u32> =
            off_report.completions.iter().map(|c| (c.index, c.crc)).collect();
        let on_crc: BTreeMap<usize, u32> =
            on.1.completions.iter().map(|c| (c.index, c.crc)).collect();
        bit_identical &= off_crc == on_crc;
        match &baseline {
            Some(b) => bit_identical &= *b == off_crc,
            None => baseline = Some(off_crc),
        }

        ratios.push(on_s / off_s.max(1e-12));
        offs.push(off_s);
        ons.push(on_s);
        last_on = Some(on);
    }
    assert!(bit_identical, "observability must not perturb results");

    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        v[v.len() / 2]
    };
    let overhead_pct = (median(&mut ratios) - 1.0) * 100.0;
    let (router, report) = last_on.expect("rounds >= 1");
    let obs = router.observer();
    Ok(ObservabilityBenchResult {
        shape: if quick { vec![48, 40, 36] } else { WorkloadConfig::default().dims },
        ranks: if quick { vec![12, 10, 9] } else { WorkloadConfig::default().ranks },
        queries: report.completions.len() + report.failures.len() + report.rejections.len(),
        off_ms: median(&mut offs) * 1e3,
        on_ms: median(&mut ons) * 1e3,
        overhead_pct,
        spans: obs.span_count(),
        log_lines: obs.log_lines().len(),
        bit_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_hits_the_speedup_gate() {
        let r = run_serve_bench(true).expect("bench runs");
        assert_eq!(r.queries, 120);
        assert!(
            r.speedup >= 2.0,
            "batched serving must be ≥2× naive, got {:.2}×",
            r.speedup
        );
        assert!(r.cache_hits > r.cache_misses, "hot workload should mostly hit");
        assert!(r.overload_rejected > 0, "overload run should shed load");
        assert!(r.p50_ms <= r.p99_ms);
        assert!(r.throughput_qps > 0.0);
    }

    #[test]
    fn quick_failover_bench_loses_nothing_and_recovers() {
        let r = run_failover_bench(true, 2, 2, None).expect("failover bench runs");
        assert_eq!(r.queries, 120);
        assert_eq!(r.failover_lost, 0, "killing 1 of 2 replicas must lose zero queries");
        assert!(r.failover_crc_identical, "failover answers must stay bit-identical");
        assert!(
            r.failover_recovery_vt_s > 0.0 && r.failover_recovery_vt_s.is_finite(),
            "the default plan crashes a replica, so recovery must be measured"
        );
        assert_eq!(r.dead_ranks, vec![1], "exactly the injected victim dies");
        assert!(r.failovers >= 1);
        assert!(r.overload_rejected > 0, "overload must shed load");
        assert!(r.overload_shed_low >= 1, "low-priority traffic sheds first");
        assert!(r.overload_quota_rejected >= 1, "quotas must bite under overload");
        assert!(r.healthy_p50_ms <= r.healthy_p99_ms);
        let j = r.to_json();
        for key in [
            "\"bench\":\"failover\"",
            "\"failover_lost\":0",
            "\"failover_crc_identical\":true",
            "\"failover_recovery_vt_s\":",
            "\"dead_ranks\":[1]",
            "\"overload_p99_ms\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn quick_observability_bench_is_bit_identical_and_instrumented() {
        let r = run_observability_bench(true).expect("observability bench runs");
        assert_eq!(r.queries, 120);
        assert!(r.bit_identical, "tracing+logging must not perturb results");
        assert!(r.spans > 0, "instrumented run must record spans");
        assert!(r.log_lines > 0, "instrumented run must emit log lines");
        let j = r.to_json();
        for key in [
            "\"bench\":\"observability\"",
            "\"overhead_pct\":",
            "\"bit_identical\":true",
            "\"spans\":",
            "\"log_lines\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // No overhead gate in quick mode — 3 rounds on a loaded CI box are
        // too noisy; the committed artifact is produced by the full run.
    }

    #[test]
    fn tier_workload_with_default_plan_tells_a_failover_story() {
        let (router, report) =
            run_tier_workload(true, 2, 2, None, ObsConfig::full()).expect("workload runs");
        assert_eq!(report.completions.len(), 120, "nothing may be lost to the crash");
        assert!(report.completions.iter().any(|c| c.failovers > 0), "crash must force failover");
        let obs = router.observer();
        assert!(obs.span_count() > 0);
        assert!(
            obs.log_lines().iter().any(|l| l.contains("\"event\":\"failover\"")),
            "failover must be logged"
        );
        let traces = obs.snapshot();
        assert_eq!(traces.len(), 5, "4 replica lanes + 1 router lane");
    }

    #[test]
    fn json_round_trips_key_fields() {
        let r = run_serve_bench(true).expect("bench runs");
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"bench\":\"serve\"",
            "\"speedup\":",
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"overload_rejected\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
