//! The `bench serve` harness: naive-vs-batched serving on a seeded
//! synthetic workload, in virtual time.
//!
//! Three runs over the same request trace:
//!
//! 1. **naive** — cache off, batch limit 1: every query contracts its own
//!    mode-0 partial.
//! 2. **batched** — cache on, batching on: partials are computed once per
//!    aligned block and shared across the batch and the cache.
//! 3. **overload** — batched config squeezed through one worker and a tiny
//!    admission queue: exercises typed [`ServeError::Overloaded`]
//!    rejections (none of which may corrupt admitted results).
//!
//! Every admitted request's result is CRC-fingerprinted; the naive and
//! batched fingerprints must agree request-for-request (the batched path is
//! bit-identical by design), and the overload run's completions must be a
//! CRC-subset of the batched ones. All clocks are modeled
//! ([`CostModel`](tucker_mpisim::CostModel)), so the emitted numbers are
//! machine-independent.

use crate::engine::{Engine, EngineConfig, RunConfig, RunReport};
use crate::error::ServeError;
use crate::store::TuckerStore;
use crate::workload::{synthetic_store, synthetic_trace, WorkloadConfig};
use std::collections::BTreeMap;

/// Everything `BENCH_pr5.json` records.
#[derive(Clone, Debug)]
pub struct ServeBenchResult {
    /// Synthetic tensor dimensions.
    pub shape: Vec<usize>,
    /// Stored ranks.
    pub ranks: Vec<usize>,
    /// Requests in the trace.
    pub queries: usize,
    /// Worker-busy seconds, naive run.
    pub naive_busy_s: f64,
    /// Worker-busy seconds, batched run.
    pub batched_busy_s: f64,
    /// `naive_busy_s / batched_busy_s` — the gated number.
    pub speedup: f64,
    /// Median end-to-end modeled latency, batched run, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile modeled latency, batched run, milliseconds.
    pub p99_ms: f64,
    /// Completed queries per modeled second, batched run.
    pub throughput_qps: f64,
    /// Mean batch size in the batched run.
    pub mean_batch: f64,
    /// Cache hits in the batched run.
    pub cache_hits: u64,
    /// Cache misses in the batched run.
    pub cache_misses: u64,
    /// Admitted-and-completed requests in the overload run.
    pub overload_completed: usize,
    /// Typed `Overloaded` rejections in the overload run.
    pub overload_rejected: usize,
}

impl ServeBenchResult {
    /// Deterministic JSON (keys in fixed order).
    pub fn to_json(&self) -> String {
        let ints = |v: &[usize]| {
            v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            concat!(
                "{{\"bench\":\"serve\",\"shape\":[{shape}],\"ranks\":[{ranks}],",
                "\"queries\":{queries},\"naive_busy_s\":{naive:.9},",
                "\"batched_busy_s\":{batched:.9},\"speedup\":{speedup:.4},",
                "\"p50_ms\":{p50:.6},\"p99_ms\":{p99:.6},",
                "\"throughput_qps\":{qps:.3},\"mean_batch\":{mb:.4},",
                "\"cache_hits\":{hits},\"cache_misses\":{misses},",
                "\"overload_completed\":{oc},\"overload_rejected\":{or}}}"
            ),
            shape = ints(&self.shape),
            ranks = ints(&self.ranks),
            queries = self.queries,
            naive = self.naive_busy_s,
            batched = self.batched_busy_s,
            speedup = self.speedup,
            p50 = self.p50_ms,
            p99 = self.p99_ms,
            qps = self.throughput_qps,
            mb = self.mean_batch,
            hits = self.cache_hits,
            misses = self.cache_misses,
            oc = self.overload_completed,
            or = self.overload_rejected,
        )
    }
}

fn crc_by_index(report: &RunReport) -> BTreeMap<usize, u32> {
    report.completions.iter().map(|c| (c.index, c.crc)).collect()
}

/// Run the serving benchmark. `quick` shrinks the store and trace for CI
/// smoke runs; the full configuration backs the committed artifact.
pub fn run_serve_bench(quick: bool) -> Result<ServeBenchResult, ServeError> {
    let wl = if quick {
        WorkloadConfig {
            dims: vec![48, 40, 36],
            ranks: vec![12, 10, 9],
            requests: 120,
            ..WorkloadConfig::default()
        }
    } else {
        WorkloadConfig::default()
    };
    let trace = synthetic_trace(&wl);
    let tucker = synthetic_store::<f64>(&wl.dims, &wl.ranks);
    // One worker for both strategies: the queue backs up enough for real
    // batches to form, and busy-time is an apples-to-apples compute total.
    let open_queue = RunConfig { workers: 1, queue_capacity: usize::MAX, batch_limit: 16 };

    // Naive: cache off, batch of one.
    let mut naive = Engine::new(
        TuckerStore::from_tucker(tucker.clone()),
        EngineConfig { cache_budget: 0, ..EngineConfig::default() },
    );
    let naive_report =
        naive.run(&trace, &RunConfig { batch_limit: 1, ..open_queue })?;
    assert_eq!(naive_report.completions.len(), trace.len(), "open queue drops nothing");

    // Batched: cache + batching on.
    let mut batched =
        Engine::new(TuckerStore::from_tucker(tucker.clone()), EngineConfig::default());
    let batched_report = batched.run(&trace, &open_queue)?;
    assert_eq!(batched_report.completions.len(), trace.len());

    // Bit-identity across strategies: every request's payload CRC agrees.
    let naive_crc = crc_by_index(&naive_report);
    let batched_crc = crc_by_index(&batched_report);
    assert_eq!(naive_crc, batched_crc, "batched results must be bit-identical to naive");

    // Overload: the same queries arriving 50× faster at one worker behind
    // a tiny queue — must reject (typed), never corrupt admitted work.
    let burst: Vec<_> = trace
        .iter()
        .map(|r| crate::engine::Request { arrival: r.arrival * 0.02, query: r.query.clone() })
        .collect();
    let mut overload =
        Engine::new(TuckerStore::from_tucker(tucker), EngineConfig::default());
    let overload_report = overload
        .run(&burst, &RunConfig { workers: 1, queue_capacity: 8, batch_limit: 16 })?;
    assert_eq!(
        overload_report.completions.len() + overload_report.rejections.len(),
        trace.len(),
        "every request either completes or is rejected"
    );
    for c in &overload_report.completions {
        assert_eq!(batched_crc[&c.index], c.crc, "admitted results survive overload intact");
    }
    for r in &overload_report.rejections {
        assert!(
            matches!(r.error, ServeError::Overloaded { .. }),
            "rejections are typed Overloaded"
        );
    }

    let stats = batched.cache_stats();
    let n = batched_report.completions.len().max(1);
    let mean_batch = batched_report.completions.iter().map(|c| c.batch_size).sum::<usize>()
        as f64
        / n as f64;
    let speedup = naive_report.busy_seconds / batched_report.busy_seconds.max(1e-30);
    Ok(ServeBenchResult {
        shape: wl.dims.clone(),
        ranks: wl.ranks.clone(),
        queries: trace.len(),
        naive_busy_s: naive_report.busy_seconds,
        batched_busy_s: batched_report.busy_seconds,
        speedup,
        p50_ms: batched_report.latency_quantile(0.50) * 1e3,
        p99_ms: batched_report.latency_quantile(0.99) * 1e3,
        throughput_qps: batched_report.throughput(),
        mean_batch,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        overload_completed: overload_report.completions.len(),
        overload_rejected: overload_report.rejections.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_hits_the_speedup_gate() {
        let r = run_serve_bench(true).expect("bench runs");
        assert_eq!(r.queries, 120);
        assert!(
            r.speedup >= 2.0,
            "batched serving must be ≥2× naive, got {:.2}×",
            r.speedup
        );
        assert!(r.cache_hits > r.cache_misses, "hot workload should mostly hit");
        assert!(r.overload_rejected > 0, "overload run should shed load");
        assert!(r.p50_ms <= r.p99_ms);
        assert!(r.throughput_qps > 0.0);
    }

    #[test]
    fn json_round_trips_key_fields() {
        let r = run_serve_bench(true).expect("bench runs");
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"bench\":\"serve\"",
            "\"speedup\":",
            "\"p50_ms\":",
            "\"p99_ms\":",
            "\"overload_rejected\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
