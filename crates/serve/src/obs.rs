//! Query observability: request-scoped tracing, deterministic structured
//! logging, SLO evaluation, and per-query critical-path attribution.
//!
//! ## Trace model
//!
//! A [`TraceContext`] (trace id + span id, SplitMix64-derived from the
//! request index and tenant — pure virtual-time determinism, no wall clock)
//! is minted at router admission and propagated through every failover
//! attempt, retry, backoff window, shard fan-out, cache lookup, and
//! partial-TTM plan step. Spans land in per-lane ring buffers (one
//! [`SpanLane`] per replica rank plus one for the router itself) as
//! compact deferred labels — nothing formats on the serving hot path —
//! and materialize as explicit-duration [`EventKind::Span`] events at
//! snapshot time, so the same
//! [`chrome_trace_json`](tucker_mpisim::chrome_trace_json) exporter that
//! renders mpisim simulator timelines renders the serving tier — and
//! [`Observer::merged_traces`] splices both into one Perfetto-loadable file.
//!
//! ## `serve-log-v1`
//!
//! The structured log is JSON-lines with a fixed field order per event:
//! `schema`, `vt`, `level`, `event`, then (when a query is in scope)
//! `trace`/`span` as zero-padded hex, then event-specific fields, then
//! `msg`. Floats go through [`json_f64`] (shortest round-trip), so a run's
//! log is byte-identical across machines and invocations. A slow-query
//! entry fires at `warn` when an end-to-end latency exceeds
//! [`ObsConfig::slow_query_threshold`].
//!
//! ## SLO semantics
//!
//! [`evaluate_slo`] reads the router's metrics registry — the per-tenant
//! log₂ latency histograms and admission/failure counters the tier records
//! unconditionally — and scores it against an [`SloPolicy`]. Latency
//! objectives use [`Histogram::quantile_upper`], the *inclusive upper
//! bucket edge*, so an SLO can only be conservatively breached, never
//! quietly met by under-estimation. Each objective carries a burn rate
//! (observed ÷ objective): > 1.0 means the error budget is burning faster
//! than allowed, i.e. the objective is breached.

use std::collections::VecDeque;
use std::fmt::Write as _;
use tucker_mpisim::{
    json_f64, Breakdown, EventKind, Histogram, MetricsRegistry, PhaseStat, RankStats, RankTrace,
    TraceEvent,
};

/// SplitMix64 finalizer: the ring/routing hash and the trace-id mixer.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Request-scoped trace identity, deterministic under virtual time.
///
/// `trace_id` names the query end-to-end; `span_id` names the current
/// operation within it. Both derive from the request index and tenant via
/// SplitMix64, so two runs of the same trace mint identical ids and the
/// exported artifacts are byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Query-scoped id, stable across every attempt/retry of the query.
    pub trace_id: u64,
    /// Parent span id for the operation currently in scope.
    pub span_id: u64,
}

impl TraceContext {
    /// Mint the root context for request `index` of tenant `tenant`.
    pub fn mint(index: usize, tenant: usize) -> Self {
        let trace_id = mix64(0x7ACE_1D5A_17ED_C0DE ^ mix64(index as u64 ^ mix64(tenant as u64)));
        TraceContext { trace_id, span_id: mix64(trace_id) }
    }

    /// Derive the child context for sub-operation `ordinal` (attempt
    /// number, shard piece, plan step) of this span.
    pub fn child(&self, ordinal: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix64(self.span_id ^ mix64(ordinal)),
        }
    }
}

/// Structured-log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Per-attempt chatter (dispatches, cache decisions).
    Debug,
    /// Query lifecycle (admission, completion).
    Info,
    /// Degraded-but-served (failover, slow query, shed load).
    Warn,
    /// Query lost (timeout, exhaustion, hard failure).
    Error,
}

impl LogLevel {
    /// Lowercase name used in `serve-log-v1` lines.
    pub fn as_str(&self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }
}

/// Observability switches. The default is everything off — the tier then
/// behaves (and allocates) exactly as it did before this module existed.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Record spans into per-lane ring buffers.
    pub tracing: bool,
    /// Emit `serve-log-v1` JSON lines.
    pub logging: bool,
    /// Minimum severity that reaches the log.
    pub level: LogLevel,
    /// End-to-end latency (virtual seconds) above which a completion also
    /// logs a `slow_query` entry at `warn` and bumps `serve/query/slow`.
    pub slow_query_threshold: f64,
    /// Per-lane span ring-buffer capacity.
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            tracing: false,
            logging: false,
            level: LogLevel::Info,
            slow_query_threshold: 1e-3,
            span_capacity: 16_384,
        }
    }
}

impl ObsConfig {
    /// Tracing and logging on (at `debug`), defaults elsewhere.
    pub fn full() -> Self {
        ObsConfig { tracing: true, logging: true, level: LogLevel::Debug, ..Default::default() }
    }

    /// Whether any collection is on at all.
    pub fn enabled(&self) -> bool {
        self.tracing || self.logging
    }
}

/// One value in a structured-log line.
pub(crate) enum Field<'a> {
    /// Unsigned integer, emitted bare.
    U(u64),
    /// Float, emitted via [`json_f64`].
    F(f64),
    /// String, emitted escaped and quoted.
    S(&'a str),
}

/// A modeled sub-span the engine records inside one service window:
/// cache lookups, the shared mode-0 GEMM, per-mode TTM plan steps, and the
/// result-transfer tail, with offsets relative to service start.
#[derive(Clone, Copy, Debug)]
pub struct EngineSpan {
    /// Which plan step the span covers (rendered to its label at export).
    pub step: EngineStep,
    /// Offset from service start, modeled seconds.
    pub offset: f64,
    /// Modeled duration, seconds.
    pub dur: f64,
}

/// Compact engine plan-step identity. Kept as data rather than a formatted
/// label so recording a span inside the serving loop is allocation-free;
/// the display string is rendered once, at snapshot/export time.
#[derive(Clone, Copy, Debug)]
pub enum EngineStep {
    /// Cache lookup for a mode-0 partial (`cache hit rows a..b` /
    /// `cache miss rows a..b`).
    Cache {
        /// Whether the lookup hit.
        hit: bool,
        /// First mode-0 row of the partial.
        start: usize,
        /// One past the last mode-0 row of the partial.
        end: usize,
    },
    /// The batched shared mode-0 GEMM (`gemm/mode0 shared xN`).
    Gemm {
        /// Distinct partials the shared call computed.
        shared: usize,
    },
    /// One TTM plan step (`ttm/mode{n}`).
    Ttm {
        /// The contracted mode.
        mode: usize,
    },
    /// The result-transfer tail (`emit`).
    Emit,
}

impl EngineStep {
    /// Append the step's display label (the exact strings the trace export
    /// has always carried).
    fn render_into(&self, out: &mut String) {
        let _ = match *self {
            EngineStep::Cache { hit, start, end } => write!(
                out,
                "cache {} rows {}..{}",
                if hit { "hit" } else { "miss" },
                start,
                end
            ),
            EngineStep::Gemm { shared } => write!(out, "gemm/mode0 shared x{shared}"),
            EngineStep::Ttm { mode } => write!(out, "ttm/mode{mode}"),
            EngineStep::Emit => {
                out.push_str("emit");
                Ok(())
            }
        };
    }
}

/// Deferred span label: the serving loop records these compact values and
/// the formatting cost is paid once in [`Observer::snapshot`], keeping
/// `format!` (and its allocations) out of the <2%-overhead hot path.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SpanName {
    /// `q{index}/attempt#{k} s{shard}r{replica} {outcome}`
    Attempt {
        /// Request index.
        index: usize,
        /// Zero-based attempt ordinal.
        k: u32,
        /// Shard the piece targets.
        shard: usize,
        /// Replica within the shard.
        replica: usize,
        /// `ok`, `corrupt`, `crash`, or `drop`.
        outcome: &'static str,
    },
    /// `q{index}/backoff#{k}`
    Backoff {
        /// Request index.
        index: usize,
        /// Zero-based attempt ordinal the backoff follows.
        k: u32,
    },
    /// `q{index}/queue`
    Queue {
        /// Request index.
        index: usize,
    },
    /// `q{index}/` + the engine step's label.
    Engine {
        /// Request index.
        index: usize,
        /// The plan step inside the service window.
        step: EngineStep,
    },
}

impl SpanName {
    /// Render the display label — byte-identical to what eager formatting
    /// at record time used to produce.
    fn render(&self) -> String {
        let mut out = String::with_capacity(32);
        let _ = match *self {
            SpanName::Attempt { index, k, shard, replica, outcome } => {
                write!(out, "q{index}/attempt#{k} s{shard}r{replica} {outcome}")
            }
            SpanName::Backoff { index, k } => write!(out, "q{index}/backoff#{k}"),
            SpanName::Queue { index } => write!(out, "q{index}/queue"),
            SpanName::Engine { index, step } => {
                let _ = write!(out, "q{index}/");
                step.render_into(&mut out);
                Ok(())
            }
        };
        out
    }
}

/// One deferred event on a lane; `seq` is implicit (`dropped` + position).
enum Pending {
    /// Explicit-duration span.
    Span {
        /// Deferred label.
        name: SpanName,
        /// Span length, virtual seconds.
        dur: f64,
    },
    /// Instant fault marker (rare: one per failed attempt / lost query).
    Fault {
        /// Human-readable description.
        desc: String,
    },
}

/// Bounded per-lane event ring mirroring
/// [`TraceBuffer`](tucker_mpisim::TraceBuffer) semantics (evict-oldest,
/// dropped counter, monotone sequence numbers) while deferring label
/// rendering to snapshot time.
struct SpanLane {
    cap: usize,
    dropped: u64,
    events: VecDeque<(f64, Pending)>,
}

impl SpanLane {
    fn new(cap: usize) -> Self {
        SpanLane { cap: cap.max(1), dropped: 0, events: VecDeque::new() }
    }

    fn push(&mut self, vt: f64, event: Pending) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((vt, event));
    }

    /// Materialize the lane as a [`RankTrace`]; names render here, once.
    fn snapshot(&self, rank: usize) -> RankTrace {
        let events = self
            .events
            .iter()
            .enumerate()
            .map(|(i, (vt, event))| TraceEvent {
                seq: self.dropped + i as u64,
                wall: 0.0,
                vt: *vt,
                kind: match event {
                    Pending::Span { name, dur } => {
                        EventKind::Span { name: name.render(), dur: *dur }
                    }
                    Pending::Fault { desc } => EventKind::Fault { desc: desc.clone() },
                },
            })
            .collect();
        RankTrace { rank, dropped: self.dropped, events }
    }
}

/// The tier's observability sink: span lanes, the structured log, and
/// per-query critical-path attribution. Owned by the router; every mutator
/// is a no-op (behind one branch) when the corresponding switch is off.
pub struct Observer {
    cfg: ObsConfig,
    world: usize,
    /// Lanes `0..world` mirror replica world ranks; lane `world` is the
    /// router itself (queueing, backoff, admission events).
    lanes: Vec<SpanLane>,
    spans: u64,
    log: Vec<String>,
    slow_queries: u64,
    /// Per-query phase attribution, one pseudo-"rank" per admitted query
    /// (PR1's critical-path machinery, reused lane-for-lane).
    attr_ids: Vec<usize>,
    /// Dense request-index → attribution-slot map (`usize::MAX` =
    /// unassigned). Request indices are small and dense, so a flat vector
    /// beats an ordered map on the per-phase hot path.
    attr_slot: Vec<usize>,
    attr: Vec<RankStats>,
}

impl Observer {
    /// A sink for a `world`-rank tier.
    pub fn new(cfg: ObsConfig, world: usize) -> Self {
        let lanes = if cfg.tracing {
            (0..=world).map(|_| SpanLane::new(cfg.span_capacity)).collect()
        } else {
            Vec::new()
        };
        Observer {
            cfg,
            world,
            lanes,
            spans: 0,
            log: Vec::new(),
            slow_queries: 0,
            attr_ids: Vec::new(),
            attr_slot: Vec::new(),
            attr: Vec::new(),
        }
    }

    /// The all-off sink every router starts with.
    pub fn off() -> Self {
        Observer::new(ObsConfig::default(), 0)
    }

    /// The active configuration.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.cfg.tracing
    }

    /// Whether a line at `level` would reach the log.
    #[inline]
    pub fn logging(&self, level: LogLevel) -> bool {
        self.cfg.logging && level >= self.cfg.level
    }

    /// The router's own lane index (replica lanes are `0..world`).
    pub(crate) fn router_lane(&self) -> usize {
        self.world
    }

    /// Record an explicit-duration span on `lane` starting at `start_vt`.
    /// The label is deferred data — nothing formats until snapshot.
    pub(crate) fn span(&mut self, lane: usize, start_vt: f64, name: SpanName, dur: f64) {
        if self.cfg.tracing {
            self.lanes[lane].push(start_vt, Pending::Span { name, dur });
            self.spans += 1;
        }
    }

    /// Record an instant fault marker on `lane` (crash, drop, timeout,
    /// integrity failure) — rendered as a Perfetto instant.
    pub(crate) fn fault(&mut self, lane: usize, vt: f64, desc: String) {
        if self.cfg.tracing {
            self.lanes[lane].push(vt, Pending::Fault { desc });
        }
    }

    /// Append one `serve-log-v1` line. Callers should guard with
    /// [`Observer::logging`] so field/msg formatting is skipped when off.
    pub(crate) fn log(
        &mut self,
        level: LogLevel,
        vt: f64,
        event: &str,
        ctx: Option<TraceContext>,
        fields: &[(&str, Field<'_>)],
        msg: &str,
    ) {
        if !self.logging(level) {
            return;
        }
        // One pre-sized buffer per line; escaping and float rendering
        // append in place, so a line costs exactly one allocation.
        let mut line = String::with_capacity(160 + msg.len());
        line.push_str("{\"schema\":\"serve-log-v1\",\"vt\":");
        push_f64(&mut line, vt);
        line.push_str(",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"event\":\"");
        line.push_str(event);
        line.push('"');
        if let Some(tc) = ctx {
            let _ = write!(
                line,
                ",\"trace\":\"{:016x}\",\"span\":\"{:016x}\"",
                tc.trace_id, tc.span_id
            );
        }
        for (k, v) in fields {
            line.push_str(",\"");
            line.push_str(k);
            line.push_str("\":");
            match v {
                Field::U(u) => {
                    let _ = write!(line, "{u}");
                }
                Field::F(f) => push_f64(&mut line, *f),
                Field::S(s) => {
                    line.push('"');
                    esc_into(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push_str(",\"msg\":\"");
        esc_into(&mut line, msg);
        line.push_str("\"}");
        self.log.push(line);
    }

    /// Count one slow query (the log line itself goes through [`Observer::log`]).
    pub(crate) fn note_slow(&mut self) {
        self.slow_queries += 1;
    }

    /// Accumulate `modeled` seconds (plus flop/byte/message counts) of
    /// `phase` against query `index`'s attribution lane.
    pub(crate) fn attr(
        &mut self,
        index: usize,
        phase: &str,
        modeled: f64,
        flops: f64,
        bytes: u64,
        msgs: u64,
    ) {
        if !self.cfg.tracing {
            return;
        }
        if index >= self.attr_slot.len() {
            self.attr_slot.resize(index + 1, usize::MAX);
        }
        let mut slot = self.attr_slot[index];
        if slot == usize::MAX {
            slot = self.attr.len();
            self.attr_slot[index] = slot;
            self.attr_ids.push(index);
            self.attr.push(RankStats::default());
        }
        self.attr[slot].accumulate(
            phase,
            PhaseStat { wall: 0.0, modeled, flops, bytes_sent: bytes, msgs },
        );
    }

    /// Seal query `index`'s attribution lane with its end-to-end latency
    /// (the lane's "modeled makespan").
    pub(crate) fn finish_query(&mut self, index: usize, latency: f64) {
        if !self.cfg.tracing {
            return;
        }
        if let Some(&slot) = self.attr_slot.get(index) {
            if slot != usize::MAX {
                self.attr[slot].modeled_time = latency;
            }
        }
    }

    /// Snapshot every lane (`rank` = lane index; the last lane is the
    /// router).
    pub fn snapshot(&self) -> Vec<RankTrace> {
        self.lanes.iter().enumerate().map(|(i, l)| l.snapshot(i)).collect()
    }

    /// Splice simulator traces after the serve lanes so one
    /// [`chrome_trace_json`](tucker_mpisim::chrome_trace_json) call renders
    /// the merged timeline (`sim` ranks are renumbered past the tier's).
    pub fn merged_traces(&self, sim: &[RankTrace]) -> Vec<RankTrace> {
        let mut all = self.snapshot();
        let base = all.len();
        for (i, t) in sim.iter().enumerate() {
            let mut t = t.clone();
            t.rank = base + i;
            all.push(t);
        }
        all
    }

    /// Spans recorded so far.
    pub fn span_count(&self) -> u64 {
        self.spans
    }

    /// The structured-log lines, in emission (virtual-time) order.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// The whole log as newline-terminated text (empty when no lines).
    pub fn log_text(&self) -> String {
        if self.log.is_empty() {
            String::new()
        } else {
            let mut s = self.log.join("\n");
            s.push('\n');
            s
        }
    }

    /// Completions that exceeded the slow-query threshold.
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries
    }

    /// Per-query critical-path breakdown: every admitted query is one
    /// pseudo-rank; phases are `queue`, `routing`, `backoff`, `contraction`,
    /// and `reassembly`.
    pub fn critical_path(&self) -> Breakdown {
        Breakdown::from_ranks(&self.attr)
    }

    /// Text rendering of [`Observer::critical_path`] with a legend mapping
    /// the breakdown's pseudo-rank numbers back to request indices.
    pub fn critical_path_report(&self) -> String {
        if self.attr.is_empty() {
            return "no per-query attribution recorded (tracing off, or nothing served)\n"
                .to_string();
        }
        let b = self.critical_path();
        let mut out = String::from(
            "per-query critical path (one pseudo-rank per admitted query):\n",
        );
        out.push_str(&b.critical_path_report());
        let mut seen = std::collections::BTreeSet::new();
        for row in &b.critical_path {
            if seen.insert(row.rank) {
                out.push_str(&format!(
                    "  rank {} = request #{}\n",
                    row.rank, self.attr_ids[row.rank]
                ));
            }
        }
        out
    }
}

/// Minimal JSON string escaping for log fields (mirrors the trace
/// exporter's contract: control chars, quotes, and backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    esc_into(&mut out, s);
    out
}

/// [`esc`] in place: append `s` escaped onto `out`. The scan-first fast
/// path covers virtually every log field, so the hot path is one
/// `push_str`.
fn esc_into(out: &mut String, s: &str) {
    if s.bytes().all(|b| b != b'"' && b != b'\\' && b >= 0x20) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Append `v` as JSON — the same contract as [`json_f64`] (shortest
/// round-trip, `null` for non-finite) without the intermediate `String`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Service-level objectives for one tier run, all latencies in
/// milliseconds of virtual time.
#[derive(Clone, Copy, Debug)]
pub struct SloPolicy {
    /// Per-tenant p50 end-to-end latency objective, ms.
    pub p50_ms: f64,
    /// Per-tenant p99 end-to-end latency objective, ms.
    pub p99_ms: f64,
    /// Admitted-query error budget (failed ÷ admitted), fraction.
    pub error_rate: f64,
    /// Worst failover recovery (finish − first failed attempt), ms.
    pub recovery_ms: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy { p50_ms: 1.0, p99_ms: 5.0, error_rate: 1e-3, recovery_ms: 50.0 }
    }
}

/// One scored objective.
#[derive(Clone, Debug)]
pub struct SloObjective {
    /// Objective name (`tenant0/p99_ms`, `error_rate`, `recovery_ms`).
    pub name: String,
    /// Observed value (conservative upper bound for latencies).
    pub observed: f64,
    /// The policy's target.
    pub objective: f64,
    /// Observed ÷ objective: > 1 burns budget faster than allowed.
    pub burn_rate: f64,
    /// Whether the objective is breached (`observed > objective`).
    pub breached: bool,
}

/// A typed SLO evaluation: one row per objective, deterministic order
/// (tenants ascending, then `error_rate`, then `recovery_ms`).
#[derive(Clone, Debug)]
pub struct SloReport {
    /// Scored objectives.
    pub objectives: Vec<SloObjective>,
}

impl SloReport {
    /// Whether any objective is breached.
    pub fn breached(&self) -> bool {
        self.objectives.iter().any(|o| o.breached)
    }

    /// Names of every breached objective, report order.
    pub fn breached_names(&self) -> Vec<&str> {
        self.objectives.iter().filter(|o| o.breached).map(|o| o.name.as_str()).collect()
    }

    /// Human-readable table.
    pub fn table(&self) -> String {
        let mut out = String::from("SLO report\n");
        out.push_str("  objective                    observed     target       burn    status\n");
        for o in &self.objectives {
            out.push_str(&format!(
                "  {:<27}  {:>11.6}  {:>11.6}  {:>6.2}  {}\n",
                o.name,
                o.observed,
                o.objective,
                o.burn_rate,
                if o.breached { "BREACH" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "  overall: {}\n",
            if self.breached() { "BREACHED" } else { "within objectives" }
        ));
        out
    }

    /// Deterministic JSON (`tucker-slo-v1`): fixed key order, floats via
    /// [`json_f64`] — byte-identical across invocations of the same run.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .objectives
            .iter()
            .map(|o| {
                format!(
                    "  {{\"name\":\"{}\",\"observed\":{},\"objective\":{},\"burn_rate\":{},\"breached\":{}}}",
                    esc(&o.name),
                    json_f64(o.observed),
                    json_f64(o.objective),
                    json_f64(o.burn_rate),
                    o.breached
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"tucker-slo-v1\",\"breached\":{},\"objectives\":[\n{}\n]}}\n",
            self.breached(),
            rows.join(",\n")
        )
    }
}

/// Score one objective.
fn objective(name: String, observed: f64, target: f64) -> SloObjective {
    let burn_rate = if target > 0.0 {
        observed / target
    } else if observed > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    SloObjective { name, observed, objective: target, burn_rate, breached: observed > target }
}

/// Evaluate `policy` against a tier run's metrics registry: the per-tenant
/// `serve/tenant/t{n}/latency_ns` log₂ histograms (scored by
/// [`Histogram::quantile_upper`] — conservative upper bucket edges), the
/// per-tenant completed/failed counters, and the
/// `serve/failover_recovery_vt` gauge.
pub fn evaluate_slo(metrics: &MetricsRegistry, policy: &SloPolicy) -> SloReport {
    // Discover tenants from the unconditional per-tenant counters.
    let mut tenants: Vec<usize> = Vec::new();
    for (name, _) in metrics.counters() {
        if let Some(rest) = name.strip_prefix("serve/tenant/t") {
            if let Some((id, _)) = rest.split_once('/') {
                if let Ok(t) = id.parse::<usize>() {
                    if !tenants.contains(&t) {
                        tenants.push(t);
                    }
                }
            }
        }
    }
    tenants.sort_unstable();

    let quantile_ms = |h: Option<&Histogram>, q: f64| -> f64 {
        h.and_then(|h| h.quantile_upper(q)).map_or(0.0, |ns| ns as f64 / 1e6)
    };

    let mut objectives = Vec::new();
    let mut completed_total = 0u64;
    let mut failed_total = 0u64;
    for &t in &tenants {
        let h = metrics.histogram(&format!("serve/tenant/t{t}/latency_ns"));
        objectives.push(objective(
            format!("tenant{t}/p50_ms"),
            quantile_ms(h, 0.5),
            policy.p50_ms,
        ));
        objectives.push(objective(
            format!("tenant{t}/p99_ms"),
            quantile_ms(h, 0.99),
            policy.p99_ms,
        ));
        completed_total += metrics.counter(&format!("serve/tenant/t{t}/completed"));
        failed_total += metrics.counter(&format!("serve/tenant/t{t}/failed"));
    }
    let admitted = completed_total + failed_total;
    let observed_rate =
        if admitted > 0 { failed_total as f64 / admitted as f64 } else { 0.0 };
    objectives.push(objective("error_rate".to_string(), observed_rate, policy.error_rate));
    let recovery_ms = metrics.gauge("serve/failover_recovery_vt").unwrap_or(0.0) * 1e3;
    objectives.push(objective("recovery_ms".to_string(), recovery_ms, policy.recovery_ms));
    SloReport { objectives }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceContext::mint(7, 2);
        assert_eq!(a, TraceContext::mint(7, 2), "same request, same identity");
        assert_ne!(a.trace_id, TraceContext::mint(8, 2).trace_id);
        assert_ne!(a.trace_id, TraceContext::mint(7, 3).trace_id);
        let c0 = a.child(0);
        let c1 = a.child(1);
        assert_eq!(c0.trace_id, a.trace_id, "children stay in the trace");
        assert_ne!(c0.span_id, c1.span_id, "siblings get distinct spans");
        assert_eq!(c0, a.child(0), "child derivation is pure");
    }

    #[test]
    fn log_lines_are_fixed_order_json_with_escaping() {
        let mut obs = Observer::new(ObsConfig::full(), 2);
        obs.log(
            LogLevel::Warn,
            1.5e-4,
            "failover",
            Some(TraceContext { trace_id: 0xABC, span_id: 0x1 }),
            &[("query", Field::U(12)), ("elapsed", Field::F(0.5)), ("why", Field::S("he said \"no\""))],
            "retrying",
        );
        assert_eq!(
            obs.log_lines(),
            &[concat!(
                "{\"schema\":\"serve-log-v1\",\"vt\":0.00015,\"level\":\"warn\",",
                "\"event\":\"failover\",\"trace\":\"0000000000000abc\",",
                "\"span\":\"0000000000000001\",\"query\":12,\"elapsed\":0.5,",
                "\"why\":\"he said \\\"no\\\"\",\"msg\":\"retrying\"}"
            )
            .to_string()]
        );
        // Below-threshold severity is filtered.
        let mut quiet = Observer::new(
            ObsConfig { level: LogLevel::Error, ..ObsConfig::full() },
            1,
        );
        quiet.log(LogLevel::Info, 0.0, "x", None, &[], "dropped");
        assert!(quiet.log_lines().is_empty());
        assert_eq!(quiet.log_text(), "");
    }

    #[test]
    fn spans_land_on_lanes_and_merge_with_sim_traces() {
        use tucker_mpisim::TraceBuffer;
        let mut obs = Observer::new(ObsConfig::full(), 2);
        obs.span(
            0,
            1e-6,
            SpanName::Attempt { index: 0, k: 0, shard: 0, replica: 0, outcome: "ok" },
            2e-6,
        );
        obs.span(obs.router_lane(), 0.0, SpanName::Queue { index: 0 }, 1e-6);
        assert_eq!(obs.span_count(), 2);
        let mut sim = TraceBuffer::new(8);
        sim.push(0.0, 5e-6, EventKind::Fault { desc: "injected".into() });
        let merged = obs.merged_traces(&[sim.snapshot(0)]);
        assert_eq!(merged.len(), 4, "2 replica lanes + router lane + 1 sim rank");
        assert_eq!(merged[3].rank, 3, "sim rank renumbered past the tier lanes");
        let json = tucker_mpisim::chrome_trace_json(&merged);
        assert!(json.contains("\"name\":\"q0/attempt#0 s0r0 ok\",\"ph\":\"X\""));
        assert!(json.contains("fault: injected"));
    }

    #[test]
    fn disabled_observer_collects_nothing() {
        let mut obs = Observer::off();
        obs.log(LogLevel::Error, 0.0, "x", None, &[], "m");
        obs.attr(0, "queue", 1.0, 0.0, 0, 0);
        obs.finish_query(0, 1.0);
        assert!(!obs.tracing() && !obs.logging(LogLevel::Error));
        assert_eq!(obs.span_count(), 0);
        assert!(obs.log_lines().is_empty());
        assert!(obs.snapshot().is_empty());
        assert!(obs.critical_path_report().contains("no per-query attribution"));
    }

    #[test]
    fn critical_path_reuses_rank_machinery_with_query_legend() {
        let mut obs = Observer::new(ObsConfig::full(), 1);
        obs.attr(3, "queue", 2e-3, 0.0, 0, 0);
        obs.attr(3, "contraction", 1e-3, 1e6, 0, 1);
        obs.finish_query(3, 3e-3);
        obs.attr(9, "contraction", 5e-4, 5e5, 0, 1);
        obs.finish_query(9, 5e-4);
        let b = obs.critical_path();
        assert_eq!(b.slowest_rank, 0, "query #3 is the slowest pseudo-rank");
        assert!((b.modeled_time - 3e-3).abs() < 1e-12);
        assert_eq!(b.critical_path[0].phase, "queue", "queue wait dominates");
        let report = obs.critical_path_report();
        assert!(report.contains("rank 0 = request #3"), "legend maps ranks to requests:\n{report}");
    }

    #[test]
    fn slo_evaluator_scores_tenants_errors_and_recovery() {
        let mut m = MetricsRegistry::default();
        // Tenant 0: healthy, fast. Tenant 1: one slow outlier + a failure.
        for _ in 0..99 {
            m.observe("serve/tenant/t0/latency_ns", 100_000); // 0.1 ms
        }
        m.counter_add("serve/tenant/t0/completed", 99);
        // 98 fast + 2 outliers: nearest-rank p99 of 100 samples is the 99th,
        // which must land inside the outlier bucket.
        for _ in 0..98 {
            m.observe("serve/tenant/t1/latency_ns", 100_000);
        }
        m.observe("serve/tenant/t1/latency_ns", 40_000_000); // 40 ms outlier
        m.observe("serve/tenant/t1/latency_ns", 40_000_000);
        m.counter_add("serve/tenant/t1/completed", 100);
        m.counter_add("serve/tenant/t1/failed", 1);
        m.gauge_set("serve/failover_recovery_vt", 0.002); // 2 ms
        let report = evaluate_slo(&m, &SloPolicy::default());
        let names: Vec<&str> = report.objectives.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "tenant0/p50_ms",
                "tenant0/p99_ms",
                "tenant1/p50_ms",
                "tenant1/p99_ms",
                "error_rate",
                "recovery_ms"
            ]
        );
        assert!(!report.objectives[0].breached, "tenant 0 p50 within 1 ms");
        let t1p99 = &report.objectives[3];
        assert!(t1p99.breached, "40 ms outlier must breach the 5 ms p99");
        assert!(t1p99.observed > 5.0 && t1p99.burn_rate > 1.0);
        let err = &report.objectives[4];
        assert!(err.breached, "1/200 failed is over the 0.1% budget");
        assert!((err.observed - 1.0 / 200.0).abs() < 1e-12);
        assert!(!report.objectives[5].breached, "2 ms recovery within 50 ms");
        assert_eq!(report.breached_names(), vec!["tenant1/p99_ms", "error_rate"]);
        // Exports are pure functions of the registry: byte-identical.
        assert_eq!(report.to_json(), evaluate_slo(&m, &SloPolicy::default()).to_json());
        assert!(report.table().contains("BREACH"));
        assert!(report.to_json().starts_with("{\"schema\":\"tucker-slo-v1\",\"breached\":true,"));
    }

    #[test]
    fn slo_evaluator_on_empty_registry_is_clean() {
        let report = evaluate_slo(&MetricsRegistry::default(), &SloPolicy::default());
        assert!(!report.breached());
        assert_eq!(report.objectives.len(), 2, "error_rate + recovery_ms only");
        assert_eq!(report.objectives[0].observed, 0.0);
    }
}
