//! Reconstruction queries: one index selection per tensor mode.
//!
//! The selection model is HDF5's hyperslab triplet `(start, step, count)`,
//! which uniformly covers the five query shapes the engine serves — single
//! element, fiber, slice, general hyperslab, and strided downsample. The
//! CLI spells a query as a comma-separated per-mode spec:
//!
//! ```text
//! 3, 0:8, 2:10:2, *
//!  │   │     │    └ all of mode 3
//!  │   │     └ indices 2,4,6,8 of mode 2 (start:end:step, end exclusive)
//!  │   └ indices 0..8 of mode 1
//!  └ index 3 of mode 0
//! ```

use crate::error::ServeError;
use tucker_tensor::SlabSel;

/// Selection along one mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeSel {
    /// Every index.
    All,
    /// A single index.
    Index(usize),
    /// Contiguous `start..end` (end exclusive, non-empty).
    Range(usize, usize),
    /// `count` indices `start, start+step, …` (step ≥ 1).
    Strided {
        /// First index.
        start: usize,
        /// Stride between kept indices.
        step: usize,
        /// Number of indices.
        count: usize,
    },
}

/// Coarse query shape, used for workload labeling and metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Every mode a single index.
    Element,
    /// Exactly one mode non-singleton.
    Fiber,
    /// Exactly one mode a single index, the rest full.
    Slice,
    /// Any mode with step > 1.
    Strided,
    /// Everything else.
    Hyperslab,
}

/// A per-mode selection against a Tucker store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// One selection per mode of the stored tensor.
    pub sel: Vec<ModeSel>,
}

impl Query {
    /// Parse the CLI slab spec: comma-separated per-mode selections, each
    /// `*`, `i`, `a:b`, or `a:b:s` (end exclusive).
    pub fn parse(spec: &str) -> Result<Query, ServeError> {
        let bad = |msg: String| ServeError::BadQuery(msg);
        let mut sel = Vec::new();
        for (n, part) in spec.split(',').enumerate() {
            let part = part.trim();
            if part == "*" {
                sel.push(ModeSel::All);
                continue;
            }
            let fields: Vec<&str> = part.split(':').collect();
            let num = |s: &str| -> Result<usize, ServeError> {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| bad(format!("mode {n}: '{s}' is not an index")))
            };
            match fields.as_slice() {
                [i] => sel.push(ModeSel::Index(num(i)?)),
                [a, b] => {
                    let (a, b) = (num(a)?, num(b)?);
                    if b <= a {
                        return Err(bad(format!("mode {n}: empty range {a}:{b}")));
                    }
                    sel.push(ModeSel::Range(a, b));
                }
                [a, b, s] => {
                    let (a, b, s) = (num(a)?, num(b)?, num(s)?);
                    if s == 0 {
                        return Err(bad(format!("mode {n}: zero step")));
                    }
                    if b <= a {
                        return Err(bad(format!("mode {n}: empty range {a}:{b}:{s}")));
                    }
                    sel.push(ModeSel::Strided { start: a, step: s, count: (b - a).div_ceil(s) });
                }
                _ => return Err(bad(format!("mode {n}: '{part}' has too many ':' fields"))),
            }
        }
        Ok(Query { sel })
    }

    /// Check the query against the store's original dimensions.
    pub fn validate(&self, dims: &[usize]) -> Result<(), ServeError> {
        if self.sel.len() != dims.len() {
            return Err(ServeError::BadQuery(format!(
                "query selects {} modes but the store has {}",
                self.sel.len(),
                dims.len()
            )));
        }
        for (n, (s, &d)) in self.sel.iter().zip(dims).enumerate() {
            let (start, step, count) = s.triplet(d);
            if count == 0 {
                return Err(ServeError::BadQuery(format!("mode {n}: empty selection")));
            }
            let last = start + (count - 1) * step;
            if last >= d {
                return Err(ServeError::BadQuery(format!(
                    "mode {n}: index {last} out of bounds for dimension {d}"
                )));
            }
        }
        Ok(())
    }

    /// Normalize to per-mode `(start, step, count)` triples (must be valid).
    pub fn normalized(&self, dims: &[usize]) -> Vec<SlabSel> {
        self.sel.iter().zip(dims).map(|(s, &d)| s.triplet(d)).collect()
    }

    /// Output dimensions of the query result.
    pub fn out_dims(&self, dims: &[usize]) -> Vec<usize> {
        self.sel.iter().zip(dims).map(|(s, &d)| s.triplet(d).2).collect()
    }

    /// Number of reconstructed elements.
    pub fn num_elems(&self, dims: &[usize]) -> usize {
        self.out_dims(dims).iter().product()
    }

    /// Coarse shape classification.
    pub fn kind(&self, dims: &[usize]) -> QueryKind {
        if self.sel.iter().zip(dims).any(|(s, &d)| s.triplet(d).1 > 1) {
            return QueryKind::Strided;
        }
        let singles = self.sel.iter().zip(dims).filter(|(s, &d)| s.triplet(d).2 == 1).count();
        let fulls = self
            .sel
            .iter()
            .zip(dims)
            .filter(|(s, &d)| {
                let (start, _, count) = s.triplet(d);
                start == 0 && count == d
            })
            .count();
        let n = dims.len();
        if singles == n {
            QueryKind::Element
        } else if singles == n - 1 {
            QueryKind::Fiber
        } else if fulls == n - 1 && singles == 1 {
            QueryKind::Slice
        } else {
            QueryKind::Hyperslab
        }
    }
}

impl ModeSel {
    /// `(start, step, count)` against a mode of extent `d`. (`All` needs the
    /// extent; the others ignore it.)
    pub fn triplet(&self, d: usize) -> SlabSel {
        match *self {
            ModeSel::All => (0, 1, d),
            ModeSel::Index(i) => (i, 1, 1),
            ModeSel::Range(a, b) => (a, 1, b.saturating_sub(a)),
            ModeSel::Strided { start, step, count } => (start, step, count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_selector_form() {
        let q = Query::parse("3, 0:8, 2:10:2, *").unwrap();
        assert_eq!(
            q.sel,
            vec![
                ModeSel::Index(3),
                ModeSel::Range(0, 8),
                ModeSel::Strided { start: 2, step: 2, count: 4 },
                ModeSel::All,
            ]
        );
        assert_eq!(q.out_dims(&[10, 12, 14, 5]), vec![1, 8, 4, 5]);
        assert_eq!(q.num_elems(&[10, 12, 14, 5]), 160);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["x", "1:0", "1:5:0", "1:2:3:4", ""] {
            assert!(
                matches!(Query::parse(bad), Err(ServeError::BadQuery(_))),
                "'{bad}' should be rejected"
            );
        }
    }

    #[test]
    fn validate_checks_rank_and_bounds() {
        let q = Query::parse("3,0:8").unwrap();
        assert!(q.validate(&[4, 10]).is_ok());
        assert!(q.validate(&[4, 10, 2]).is_err(), "rank mismatch");
        assert!(q.validate(&[3, 10]).is_err(), "index 3 of 3");
        assert!(q.validate(&[4, 7]).is_err(), "range end past extent");
    }

    #[test]
    fn strided_count_is_ceiling() {
        // 2:9:3 keeps 2, 5, 8.
        let q = Query::parse("2:9:3").unwrap();
        assert_eq!(q.normalized(&[10]), vec![(2, 3, 3)]);
        assert!(q.validate(&[10]).is_ok());
        assert!(q.validate(&[8]).is_err(), "last index 8 out of bounds for 8");
    }

    #[test]
    fn kind_classification() {
        let dims = &[8, 9, 10];
        assert_eq!(Query::parse("1,2,3").unwrap().kind(dims), QueryKind::Element);
        assert_eq!(Query::parse("*,2,3").unwrap().kind(dims), QueryKind::Fiber);
        assert_eq!(Query::parse("*,2,*").unwrap().kind(dims), QueryKind::Slice);
        assert_eq!(Query::parse("0:8:2,2,3").unwrap().kind(dims), QueryKind::Strided);
        assert_eq!(Query::parse("0:4,2:5,3").unwrap().kind(dims), QueryKind::Hyperslab);
    }
}
