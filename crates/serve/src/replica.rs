//! The replicated shard tier: mode-0 shard layout and the modeled replica
//! ranks the router dispatches attempts to.
//!
//! ## Layout
//!
//! A [`ShardMap`] partitions the store's mode-0 rows into `S` contiguous
//! blocks by the paper's §3.4 rule ([`block_range`]); each shard is served
//! by `k` replica engines, and replica `r` of shard `s` occupies *world
//! rank* `s·k + r`. Every replica of a shard holds an identical
//! [`shard_tucker`] slice, so any of them answers a shard-local query
//! bit-identically.
//!
//! ## Fault semantics
//!
//! Each replica rank keeps its own monotone op counter — one op per
//! *attempt* routed to it — and interprets an attached
//! [`FaultPlan`](tucker_mpisim::FaultPlan) against `(world rank, op)`
//! exactly like the mpisim runtime does for sends and recvs:
//!
//! * `Crash` — the replica registers itself in the shared
//!   [`CrashRegistry`] and serves nothing, now or ever again; the router
//!   fails the attempt over to a surviving replica.
//! * `Drop` — the attempt is lost in transit (no work done, no clock
//!   advance); the router retries after backoff.
//! * `Delay { vt, .. }` — the attempt is served but takes `vt` extra
//!   virtual seconds, which can push the query past its timeout budget.
//! * `Corrupt` — the attempt is served, but one bit of the response
//!   payload is flipped *after* the replica fingerprints it; the router's
//!   own CRC-32 over the received bytes disagrees with the replica's, the
//!   answer is discarded, and the attempt fails over (a wrong-CRC payload
//!   is never returned to a client).

use crate::engine::{tensor_crc, Engine, EngineConfig};
use crate::error::ServeError;
use crate::obs::EngineSpan;
use crate::plan::OrderPolicy;
use crate::query::Query;
use crate::store::TuckerStore;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use tucker_core::shard_tucker;
use tucker_core::TuckerTensor;
use tucker_dtensor::{block_owner, block_range};
use tucker_mpisim::{CrashRegistry, FaultKind, FaultPlan};
use tucker_tensor::io::IoScalar;
use tucker_tensor::{SlabSel, Tensor};

/// The mode-0 shard partition: `rows` global rows over `shards` contiguous
/// blocks, front-loaded per [`block_range`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMap {
    rows: usize,
    shards: usize,
}

impl ShardMap {
    /// A partition of `rows` mode-0 rows into `shards` blocks.
    pub fn new(rows: usize, shards: usize) -> Self {
        assert!(
            shards >= 1 && shards <= rows,
            "shard map: {shards} shards over {rows} rows"
        );
        ShardMap { rows, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Global mode-0 rows covered.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        block_range(self.rows, self.shards, s)
    }

    /// The shard owning global row `row`.
    pub fn owner(&self, row: usize) -> usize {
        block_owner(self.rows, self.shards, row)
    }

    /// Split a global mode-0 selection into per-shard, shard-local pieces,
    /// in ascending shard (= ascending global row) order. Each piece is a
    /// contiguous run of the arithmetic progression, so it is again a
    /// `(start, step, count)` selection — shifted into the shard's local
    /// coordinates.
    pub fn split(&self, sel: SlabSel) -> Vec<(usize, SlabSel)> {
        let (start, step, count) = sel;
        let mut out: Vec<(usize, SlabSel)> = Vec::new();
        for k in 0..count {
            let row = start + k * step;
            let shard = self.owner(row);
            let local = row - self.range(shard).start;
            match out.last_mut() {
                Some((s, (_, _, c))) if *s == shard => *c += 1,
                _ => out.push((shard, (local, step, 1))),
            }
        }
        out
    }
}

/// Outcome of one attempt on one replica rank.
pub(crate) enum Attempt<T> {
    /// The replica answered. `crc` is the replica's own fingerprint of what
    /// it computed — the router must re-fingerprint `tensor` and compare to
    /// detect in-flight corruption.
    Served {
        /// Response payload as received (possibly corrupted in transit).
        tensor: Tensor<T>,
        /// The replica's CRC-32 of the payload it actually computed.
        crc: u32,
        /// Virtual time the response arrived.
        finish: f64,
        /// Engine plan-step spans recorded inside the service window
        /// (empty unless span recording is on), offsets relative to the
        /// attempt's start.
        sub: Vec<EngineSpan>,
    },
    /// The replica died on this attempt (it is now in the registry).
    Crashed {
        /// Virtual time the death was observed.
        at: f64,
    },
    /// The attempt was lost in transit; nothing was served.
    Dropped {
        /// Virtual time the loss was detected.
        at: f64,
    },
    /// The query itself is unservable (e.g. malformed); retrying elsewhere
    /// cannot help.
    Failed(ServeError),
}

/// The replica ranks: one [`Engine`] per world rank, with per-rank op
/// counters, virtual clocks, fault schedules, and a shared [`CrashRegistry`].
pub struct ReplicaTier<T: IoScalar> {
    map: ShardMap,
    replicas: usize,
    dims: Vec<usize>,
    engines: Vec<Engine<T>>,
    ops: Vec<u64>,
    clocks: Vec<f64>,
    faults: Vec<HashMap<u64, FaultKind>>,
    registry: Arc<CrashRegistry>,
}

impl<T: IoScalar> ReplicaTier<T> {
    /// Shard `tk` into `shards` mode-0 blocks and stand up `replicas`
    /// engines per shard, with `plan`'s faults armed against world ranks.
    /// Requires [`OrderPolicy::Exact`] — the tier's bit-identity contract
    /// is meaningless under cost-ordered (tolerance-equal) execution.
    pub fn new(
        tk: &TuckerTensor<T>,
        shards: usize,
        replicas: usize,
        cfg: EngineConfig,
        plan: &FaultPlan,
    ) -> Self {
        assert!(replicas >= 1, "need at least one replica per shard");
        assert_eq!(
            cfg.order_policy,
            OrderPolicy::Exact,
            "replicated tier requires the bit-identical Exact policy"
        );
        let dims = tk.original_dims();
        assert!(!dims.is_empty(), "tier needs at least one mode");
        let map = ShardMap::new(dims[0], shards);
        let parts = shard_tucker(tk, shards);
        let world = shards * replicas;
        let mut engines = Vec::with_capacity(world);
        for part in &parts {
            for _ in 0..replicas {
                engines
                    .push(Engine::new(TuckerStore::from_tucker(part.clone()), cfg.clone()));
            }
        }
        let faults = (0..world).map(|rank| plan.for_rank(rank)).collect();
        ReplicaTier {
            map,
            replicas,
            dims,
            engines,
            ops: vec![0; world],
            clocks: vec![0.0; world],
            faults,
            registry: Arc::new(CrashRegistry::new(world)),
        }
    }

    /// The shard partition.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Global (unsharded) tensor dimensions the tier serves.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Replicas per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total replica ranks (`shards × replicas`).
    pub fn world_size(&self) -> usize {
        self.engines.len()
    }

    /// World rank of replica `r` of shard `s`.
    pub fn rank(&self, shard: usize, replica: usize) -> usize {
        debug_assert!(shard < self.map.shards() && replica < self.replicas);
        shard * self.replicas + replica
    }

    /// The shard a world rank serves.
    pub fn shard_of(&self, rank: usize) -> usize {
        rank / self.replicas
    }

    /// The shared crash registry (the router's failover oracle).
    pub fn registry(&self) -> &Arc<CrashRegistry> {
        &self.registry
    }

    /// Replica `rank`'s virtual busy-until clock.
    pub(crate) fn clock(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Toggle engine plan-step span recording on every replica.
    pub(crate) fn set_span_recording(&mut self, on: bool) {
        for e in &mut self.engines {
            e.set_span_recording(on);
        }
    }

    /// Route one attempt of shard-local query `q` to `rank`, arriving at
    /// virtual time `at`. Consumes one op on the rank and interprets any
    /// fault scheduled there.
    pub(crate) fn attempt(&mut self, rank: usize, q: &Query, at: f64) -> Attempt<T> {
        if self.registry.is_crashed(rank) {
            // Defensive: the router filters dead replicas, but a rank can
            // die between the filter and the attempt in future schedules.
            return Attempt::Crashed { at };
        }
        let op = self.ops[rank];
        self.ops[rank] += 1;
        let fault = self.faults[rank].get(&op).cloned();
        match fault {
            Some(FaultKind::Crash) => {
                self.registry.mark(rank, op, "serve");
                Attempt::Crashed { at }
            }
            Some(FaultKind::Drop { .. }) => Attempt::Dropped { at },
            fault => {
                let start = at.max(self.clocks[rank]);
                let out = match self.engines[rank].execute(q) {
                    Ok(out) => out,
                    Err(e) => return Attempt::Failed(e),
                };
                let sub = self.engines[rank].take_spans();
                let mut tensor = out.tensor;
                let mut service = out.cost.seconds;
                // The replica fingerprints what it computed *before* the
                // wire can damage it.
                let crc = tensor_crc(&tensor);
                match fault {
                    Some(FaultKind::Delay { vt, .. }) => service += vt.max(0.0),
                    Some(FaultKind::Corrupt { element, bit }) => {
                        flip_payload_bit(&mut tensor, element, bit);
                    }
                    _ => {}
                }
                let finish = start + service;
                self.clocks[rank] = finish;
                Attempt::Served { tensor, crc, finish, sub }
            }
        }
    }
}

/// Flip one bit of one element of a payload in place (indices reduced
/// modulo the payload size), mirroring mpisim's in-transit `Corrupt` fault.
fn flip_payload_bit<T: IoScalar>(t: &mut Tensor<T>, element: usize, bit: u32) {
    if t.is_empty() {
        return;
    }
    let idx = element % t.len();
    let width = std::mem::size_of::<T>() as u32 * 8;
    let bit = bit % width;
    let mut bytes = Vec::with_capacity(width as usize / 8);
    t.data()[idx].write_le(&mut bytes).expect("vec write cannot fail");
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    let flipped = T::read_le(&mut bytes.as_slice()).expect("vec read cannot fail");
    t.data_mut()[idx] = flipped;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synthetic_store;

    #[test]
    fn shard_map_split_covers_selections_in_order() {
        let m = ShardMap::new(10, 4); // blocks 0..3, 3..6, 6..8, 8..10
        assert_eq!(m.range(0), 0..3);
        assert_eq!(m.owner(0), 0);
        assert_eq!(m.owner(9), 3);
        // Contiguous selection spanning three shards.
        assert_eq!(
            m.split((2, 1, 5)),
            vec![(0, (2, 1, 1)), (1, (0, 1, 3)), (2, (0, 1, 1))]
        );
        // Strided selection: rows 1, 4, 7 land in shards 0, 1, 2.
        assert_eq!(
            m.split((1, 3, 3)),
            vec![(0, (1, 3, 1)), (1, (1, 3, 1)), (2, (1, 3, 1))]
        );
        // Wholly inside one shard keeps one local piece.
        assert_eq!(m.split((3, 1, 3)), vec![(1, (0, 1, 3))]);
        // Every split conserves the total count and stays in-range.
        for &(start, step, count) in
            &[(0usize, 1usize, 10usize), (0, 2, 5), (1, 4, 3), (9, 1, 1)]
        {
            let pieces = m.split((start, step, count));
            assert_eq!(pieces.iter().map(|&(_, (_, _, c))| c).sum::<usize>(), count);
            for &(s, (lstart, lstep, lcount)) in &pieces {
                assert_eq!(lstep, step);
                assert!(lstart + (lcount - 1) * lstep < m.range(s).len());
            }
        }
    }

    #[test]
    fn crash_fault_registers_and_sticks() {
        let tk = synthetic_store::<f64>(&[12, 6, 5], &[4, 3, 2]);
        let plan = FaultPlan::new().crash(1, 0);
        let mut tier = ReplicaTier::new(&tk, 2, 2, EngineConfig::default(), &plan);
        assert_eq!(tier.world_size(), 4);
        assert_eq!(tier.rank(1, 1), 3);
        assert_eq!(tier.shard_of(3), 1);
        let q = Query::parse("0,0,0").unwrap();
        // Rank 1's first attempt fires the crash and registers the death.
        assert!(matches!(tier.attempt(1, &q, 0.0), Attempt::Crashed { .. }));
        assert!(tier.registry().is_crashed(1));
        assert_eq!(tier.registry().get(1).unwrap().phase, "serve");
        // Dead replicas stay dead for later attempts.
        assert!(matches!(tier.attempt(1, &q, 1.0), Attempt::Crashed { .. }));
        // Its shard-mate is untouched.
        match tier.attempt(0, &q, 0.0) {
            Attempt::Served { tensor, crc, .. } => {
                assert_eq!(tensor_crc(&tensor), crc);
                assert_eq!(tensor.len(), 1);
            }
            _ => panic!("rank 0 must serve"),
        }
    }

    #[test]
    fn corrupt_fault_breaks_the_crc_exactly_once() {
        let tk = synthetic_store::<f64>(&[8, 6, 5], &[4, 3, 2]);
        let plan = FaultPlan::new().corrupt(0, 0, 3, 17);
        let mut tier = ReplicaTier::new(&tk, 1, 1, EngineConfig::default(), &plan);
        let q = Query::parse("0:4,0:3,1").unwrap();
        match tier.attempt(0, &q, 0.0) {
            Attempt::Served { tensor, crc, .. } => {
                assert_ne!(tensor_crc(&tensor), crc, "flip must break the fingerprint")
            }
            _ => panic!("corrupt attempts still serve"),
        }
        // The fault is keyed to op 0; op 1 serves clean.
        match tier.attempt(0, &q, 0.0) {
            Attempt::Served { tensor, crc, .. } => assert_eq!(tensor_crc(&tensor), crc),
            _ => panic!("second attempt serves clean"),
        }
    }
}
