//! The query engine: planning, cached/batched execution, and a
//! deterministic multi-worker serving loop.
//!
//! ## Execution (per query, [`OrderPolicy::Exact`])
//!
//! 1. **Mode 0** through the store's pre-packed core ([`TuckerStore`]):
//!    either the exact selected rows, or — with the cache enabled — a
//!    block-aligned contiguous row range whose partial is reusable across
//!    queries, with the exact rows cut out by a bit-preserving gather.
//! 2. **Modes 1…N−1** ascending, each a TTM against a zero-copy strided
//!    row-subview of the factor. Ascending order plus the kernel
//!    determinism contract make the result bit-identical to the same
//!    hyperslab of `TuckerTensor::reconstruct()`.
//!
//! [`OrderPolicy::Cost`] instead contracts in the planner's
//! flop-minimizing order — faster, equal to rounding only.
//!
//! ## Serving loop
//!
//! [`Engine::run`] simulates a bounded-queue multi-worker executor in
//! *virtual time*: requests carry arrival timestamps, workers advance a
//! modeled clock by each batch's predicted service time (§3.5-style
//! `γ·flops` plus transfer terms from [`CostModel`]), and admission control
//! rejects arrivals that find the queue full (or a tenant over quota)
//! with a typed [`ServeError::Overloaded`] / [`ServeError::QuotaExceeded`].
//! Everything — batching decisions, latencies,
//! throughput — is a pure function of the request trace and config, so
//! benchmark artifacts are machine-independent and reproducible.

use crate::cache::{CacheStats, ContractionCache, PartialKey};
use crate::error::ServeError;
use crate::obs::{EngineSpan, EngineStep};
use crate::plan::{plan, OrderPolicy, QueryPlan};
use crate::query::Query;
use crate::store::TuckerStore;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use tucker_core::crc32::Crc32;
use tucker_mpisim::{CostModel, MetricsRegistry};
use tucker_tensor::io::IoScalar;
use tucker_tensor::{hyperslab, ttm, SlabSel, Tensor};

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Contraction-cache payload budget in bytes; 0 disables caching.
    pub cache_budget: usize,
    /// Mode-0 cache block alignment (rows). Queries landing in the same
    /// aligned range share one cached partial.
    pub block: usize,
    /// Contraction-order policy.
    pub order_policy: OrderPolicy,
    /// Machine model for predicted service times.
    pub cost: CostModel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_budget: 64 << 20,
            block: 32,
            order_policy: OrderPolicy::Exact,
            cost: CostModel::andes(),
        }
    }
}

/// Modeled cost of answering one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Floating-point operations executed for this query alone (shared
    /// partial-contraction work is accounted separately).
    pub flops: f64,
    /// Bytes gathered/emitted.
    pub bytes: f64,
    /// Modeled service seconds (this query's share).
    pub seconds: f64,
}

/// One query answered.
pub struct QueryOutput<T> {
    /// The reconstructed hyperslab.
    pub tensor: Tensor<T>,
    /// Modeled per-query cost.
    pub cost: QueryCost,
    /// The plan that was executed.
    pub plan: QueryPlan,
}

/// A batch answered: per-query outputs plus the cost of the partial
/// contractions shared across the batch.
pub struct BatchOutput<T> {
    /// Outputs in request order.
    pub outputs: Vec<QueryOutput<T>>,
    /// Modeled seconds of shared work (computed partials).
    pub shared_seconds: f64,
}

/// The serving engine: store + cache + metrics.
pub struct Engine<T: IoScalar> {
    store: TuckerStore<T>,
    cache: ContractionCache<T>,
    cfg: EngineConfig,
    metrics: MetricsRegistry,
    synced: CacheStats,
    record_spans: bool,
    spans: Vec<EngineSpan>,
}

impl<T: IoScalar> Engine<T> {
    /// Wrap a store for serving.
    pub fn new(store: TuckerStore<T>, cfg: EngineConfig) -> Self {
        let cache = ContractionCache::new(cfg.cache_budget);
        Engine {
            store,
            cache,
            cfg,
            metrics: MetricsRegistry::default(),
            synced: CacheStats::default(),
            record_spans: false,
            spans: Vec::new(),
        }
    }

    /// Toggle per-call [`EngineSpan`] recording (cache lookups, the shared
    /// mode-0 GEMM, per-mode TTM plan steps, the transfer tail). Recording
    /// only appends to a side buffer — results and modeled costs are
    /// bit-identical either way.
    pub fn set_span_recording(&mut self, on: bool) {
        self.record_spans = on;
    }

    /// Drain the spans recorded since the last call (empty when recording
    /// is off). Offsets are relative to the call's service start.
    pub fn take_spans(&mut self) -> Vec<EngineSpan> {
        std::mem::take(&mut self.spans)
    }

    /// The underlying store.
    pub fn store(&self) -> &TuckerStore<T> {
        &self.store
    }

    /// The engine's metrics registry (`serve/*` namespace).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Align a mode-0 selection to the covering cache block range.
    fn aligned_range(&self, sel0: SlabSel) -> (usize, usize) {
        let (start, step, count) = sel0;
        let i0 = self.store.dims()[0];
        let b = self.cfg.block.max(1);
        let last = start + (count - 1) * step;
        (start - start % b, ((last / b + 1) * b).min(i0))
    }

    /// The mode-0 spec whose partial this query consumes: the aligned
    /// contiguous range when caching, the exact selection otherwise.
    /// Queries with equal specs can share one partial contraction — the
    /// serving loop batches on this key.
    pub fn share_spec(&self, sel0: SlabSel) -> SlabSel {
        if self.cfg.cache_budget > 0 {
            let (bstart, bend) = self.aligned_range(sel0);
            (bstart, 1, bend - bstart)
        } else {
            sel0
        }
    }

    /// Answer one query.
    pub fn execute(&mut self, q: &Query) -> Result<QueryOutput<T>, ServeError> {
        let mut batch = self.execute_batch(std::slice::from_ref(q))?;
        let mut out = batch.outputs.pop().expect("batch of one");
        // A solo call owns the shared work it triggered.
        out.cost.seconds += batch.shared_seconds;
        Ok(out)
    }

    /// Answer a batch of queries, computing each distinct mode-0 partial
    /// once (one batched GEMM against the packed core) and sharing it
    /// across the batch — and across future batches via the cache.
    pub fn execute_batch(&mut self, qs: &[Query]) -> Result<BatchOutput<T>, ServeError> {
        if self.record_spans {
            self.spans.clear();
        }
        let dims = self.store.dims().to_vec();
        let ranks = self.store.ranks().to_vec();
        if dims.is_empty() {
            return Err(ServeError::BadQuery("store has no modes".into()));
        }
        for q in qs {
            q.validate(&dims)?;
        }
        let sels: Vec<Vec<SlabSel>> = qs.iter().map(|q| q.normalized(&dims)).collect();
        let sb = self.store.scalar_bytes();
        let gamma = self.cfg.cost.gamma(sb);
        let rest: usize = ranks.iter().skip(1).product();

        if self.cfg.order_policy == OrderPolicy::Cost {
            // Cost order bypasses the packed-core/cache path: a plain TTM
            // chain in planner order (tolerance-equal, not bit-equal).
            let outputs: Result<Vec<_>, ServeError> =
                sels.iter().map(|sel| self.execute_cost_order(sel, &ranks, gamma)).collect();
            let outputs = outputs?;
            self.note_batch(&outputs, qs.len(), 0.0);
            return Ok(BatchOutput { outputs, shared_seconds: 0.0 });
        }

        // Distinct partial specs across the batch, in first-seen order.
        let mut spec_of = Vec::with_capacity(qs.len());
        let mut distinct: Vec<SlabSel> = Vec::new();
        let mut index_of: BTreeMap<SlabSel, usize> = BTreeMap::new();
        for sel in &sels {
            let spec = self.share_spec(sel[0]);
            let idx = *index_of.entry(spec).or_insert_with(|| {
                distinct.push(spec);
                distinct.len() - 1
            });
            spec_of.push(idx);
        }

        // Resolve each distinct partial: cache hit, or batched contraction.
        let caching = self.cfg.cache_budget > 0;
        let mut partials: Vec<Option<Arc<Tensor<T>>>> = vec![None; distinct.len()];
        if caching {
            for (i, &spec) in distinct.iter().enumerate() {
                let key = PartialKey { mode: 0, start: spec.0, end: spec.0 + spec.2 };
                partials[i] = self.cache.get(key);
                if self.record_spans {
                    self.spans.push(EngineSpan {
                        step: EngineStep::Cache {
                            hit: partials[i].is_some(),
                            start: spec.0,
                            end: spec.0 + spec.2,
                        },
                        offset: 0.0,
                        dur: 0.0,
                    });
                }
            }
        }
        let missing: Vec<usize> =
            (0..distinct.len()).filter(|&i| partials[i].is_none()).collect();
        let mut shared_flops = 0.0;
        if !missing.is_empty() {
            let specs: Vec<SlabSel> = missing.iter().map(|&i| distinct[i]).collect();
            let computed = self.store.contract_mode0_batch(&specs);
            for (&i, tensor) in missing.iter().zip(computed) {
                let spec = distinct[i];
                shared_flops += 2.0 * spec.2 as f64 * ranks[0] as f64 * rest as f64;
                let value = Arc::new(tensor);
                if caching {
                    let key = PartialKey { mode: 0, start: spec.0, end: spec.0 + spec.2 };
                    let bytes = value.len() * sb;
                    self.cache.insert(key, Arc::clone(&value), bytes);
                }
                partials[i] = Some(value);
            }
        }
        let shared_seconds = if missing.is_empty() {
            0.0
        } else {
            self.cfg.cost.alpha + gamma * shared_flops
        };
        if self.record_spans && shared_seconds > 0.0 {
            self.spans.push(EngineSpan {
                step: EngineStep::Gemm { shared: missing.len() },
                offset: 0.0,
                dur: shared_seconds,
            });
        }

        // Per-query tails.
        let mut outputs = Vec::with_capacity(qs.len());
        for (sel, &pidx) in sels.iter().zip(&spec_of) {
            let partial = partials[pidx].as_ref().expect("resolved above");
            let spec = distinct[pidx];
            let (start, step, count) = sel[0];
            let mut cost = QueryCost::default();
            // Cut the selected rows out of the (possibly wider) partial.
            let base: Arc<Tensor<T>> = if (start, step, count) == spec {
                Arc::clone(partial)
            } else {
                let mut gsel = vec![(start - spec.0, step, count)];
                gsel.extend(ranks.iter().skip(1).map(|&r| (0, 1, r)));
                let g = hyperslab(partial, &gsel);
                cost.bytes += (g.len() * sb) as f64;
                Arc::new(g)
            };
            // Modes 1..N ascending (bit-identity with reconstruct()).
            let mut counts: Vec<usize> = sel.iter().map(|&(_, _, c)| c).collect();
            counts[0] = count;
            let qplan = plan(&ranks, &counts, OrderPolicy::Exact);
            let mut y: Option<Tensor<T>> = None;
            // Modeled offset of the next plan step within this query's
            // service window (shared GEMM first, then the dispatch α).
            let mut step_off = shared_seconds + self.cfg.cost.alpha;
            for n in 1..dims.len() {
                let u = self.store.factor_rows(n, sel[n]);
                let src = y.as_ref().unwrap_or(&base);
                let before: usize = counts[..n].iter().product();
                let after: usize = ranks[n + 1..].iter().product();
                let step_flops = 2.0 * counts[n] as f64 * ranks[n] as f64 * (before * after) as f64;
                cost.flops += step_flops;
                if self.record_spans {
                    self.spans.push(EngineSpan {
                        step: EngineStep::Ttm { mode: n },
                        offset: step_off,
                        dur: gamma * step_flops,
                    });
                    step_off += gamma * step_flops;
                }
                y = Some(ttm(src, n, u, false));
            }
            let tensor = match y {
                Some(t) => t,
                None => (*base).clone(),
            };
            cost.bytes += (tensor.len() * sb) as f64;
            cost.seconds =
                self.cfg.cost.alpha + gamma * cost.flops + self.cfg.cost.beta_per_byte * cost.bytes;
            if self.record_spans {
                self.spans.push(EngineSpan {
                    step: EngineStep::Emit,
                    offset: step_off,
                    dur: self.cfg.cost.beta_per_byte * cost.bytes,
                });
            }
            outputs.push(QueryOutput { tensor, cost, plan: qplan });
        }
        self.note_batch(&outputs, qs.len(), shared_seconds);
        Ok(BatchOutput { outputs, shared_seconds })
    }

    /// Cost-order execution: plain TTM chain in the planner's order.
    fn execute_cost_order(
        &mut self,
        sel: &[SlabSel],
        ranks: &[usize],
        gamma: f64,
    ) -> Result<QueryOutput<T>, ServeError> {
        let counts: Vec<usize> = sel.iter().map(|&(_, _, c)| c).collect();
        let qplan = plan(ranks, &counts, OrderPolicy::Cost);
        let mut cost = QueryCost::default();
        let mut extents: Vec<usize> = ranks.to_vec();
        let mut y: Option<Tensor<T>> = None;
        for &n in &qplan.order {
            let u = self.store.factor_rows(n, sel[n]);
            let rest: usize =
                extents.iter().enumerate().filter(|&(m, _)| m != n).map(|(_, &e)| e).product();
            cost.flops += 2.0 * counts[n] as f64 * ranks[n] as f64 * rest as f64;
            extents[n] = counts[n];
            let src_owned;
            let src = match &y {
                Some(t) => t,
                None => {
                    src_owned = self.store.tucker().core.clone();
                    &src_owned
                }
            };
            y = Some(ttm(src, n, u, false));
        }
        let tensor = y.unwrap_or_else(|| self.store.tucker().core.clone());
        let sb = self.store.scalar_bytes();
        cost.bytes = (tensor.len() * sb) as f64;
        cost.seconds =
            self.cfg.cost.alpha + gamma * cost.flops + self.cfg.cost.beta_per_byte * cost.bytes;
        Ok(QueryOutput { tensor, cost, plan: qplan })
    }

    /// Record per-batch metrics and sync cache counters.
    fn note_batch(&mut self, outputs: &[QueryOutput<T>], batch_size: usize, shared_seconds: f64) {
        self.metrics.counter_add("serve/query/count", outputs.len() as u64);
        self.metrics.observe("serve/batch/size", batch_size as u64);
        for out in outputs {
            let ns = ((out.cost.seconds + shared_seconds / batch_size.max(1) as f64) * 1e9) as u64;
            self.metrics.observe("serve/query/latency", ns);
        }
        let s = self.cache.stats();
        self.metrics.counter_add("serve/cache/hits", s.hits - self.synced.hits);
        self.metrics.counter_add("serve/cache/misses", s.misses - self.synced.misses);
        self.metrics.counter_add("serve/cache/evictions", s.evictions - self.synced.evictions);
        self.metrics.gauge_set("serve/cache/bytes", s.bytes as f64);
        self.synced = s;
    }

    /// Run a request trace through the virtual-time serving loop. Returns
    /// every admitted request's completion (with a CRC-32 fingerprint of
    /// its result payload — in-flight corruption shows up as a mismatch
    /// against a direct [`Engine::execute`]) and every rejection, which is
    /// always typed: [`ServeError::Overloaded`] for a full queue,
    /// [`ServeError::QuotaExceeded`] for a tenant over its quota.
    pub fn run(&mut self, requests: &[Request], rc: &RunConfig) -> Result<RunReport, ServeError> {
        assert!(rc.workers > 0, "run: need at least one worker");
        assert!(rc.batch_limit > 0, "run: batch limit must be positive");
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival
                .partial_cmp(&requests[b].arrival)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });
        let dims = self.store.dims().to_vec();

        let mut workers = vec![0.0f64; rc.workers];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut queued_by_tenant: BTreeMap<usize, usize> = BTreeMap::new();
        let mut completions = Vec::new();
        let mut rejections = Vec::new();
        let mut busy_seconds = 0.0;
        let mut makespan = 0.0f64;
        let mut next = 0usize;

        loop {
            // Earliest-free worker.
            let (w, free) = workers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite").then(a.0.cmp(&b.0)))
                .map(|(i, &t)| (i, t))
                .expect("workers non-empty");
            let next_arrival = order.get(next).map(|&i| requests[i].arrival);
            let can_dispatch = !queue.is_empty()
                && match next_arrival {
                    Some(t) => free <= t,
                    None => true,
                };
            if can_dispatch {
                let head = queue.pop_front().expect("non-empty");
                *queued_by_tenant.entry(requests[head].tenant).or_insert(1) -= 1;
                let t0 = free.max(requests[head].arrival);
                // Batch: queued requests sharing the head's partial spec
                // that have already arrived by dispatch time.
                let head_spec = self.share_spec(requests[head].query.normalized(&dims)[0]);
                let mut batch = vec![head];
                let mut i = 0;
                while i < queue.len() && batch.len() < rc.batch_limit {
                    let cand = queue[i];
                    if requests[cand].arrival <= t0
                        && self.share_spec(requests[cand].query.normalized(&dims)[0]) == head_spec
                    {
                        let picked = queue.remove(i).expect("in range");
                        *queued_by_tenant.entry(requests[picked].tenant).or_insert(1) -= 1;
                        batch.push(picked);
                    } else {
                        i += 1;
                    }
                }
                let queries: Vec<Query> =
                    batch.iter().map(|&i| requests[i].query.clone()).collect();
                let out = self.execute_batch(&queries)?;
                let service: f64 =
                    out.shared_seconds + out.outputs.iter().map(|o| o.cost.seconds).sum::<f64>();
                let finish = t0 + service;
                workers[w] = finish;
                busy_seconds += service;
                makespan = makespan.max(finish);
                for (&idx, o) in batch.iter().zip(&out.outputs) {
                    completions.push(Completion {
                        index: idx,
                        arrival: requests[idx].arrival,
                        dispatch: t0,
                        finish,
                        batch_size: batch.len(),
                        elems: o.tensor.len(),
                        crc: tensor_crc(&o.tensor),
                    });
                }
            } else if let Some(t) = next_arrival {
                let idx = order[next];
                next += 1;
                makespan = makespan.max(t);
                let tenant = requests[idx].tenant;
                let tenant_queued = queued_by_tenant.get(&tenant).copied().unwrap_or(0);
                if rc.tenant_quota.is_some_and(|quota| tenant_queued >= quota) {
                    self.metrics.counter_add("serve/query/rejected", 1);
                    self.metrics.counter_add("serve/query/quota_rejected", 1);
                    rejections.push(Rejection {
                        index: idx,
                        arrival: t,
                        error: ServeError::QuotaExceeded {
                            tenant,
                            queued: tenant_queued,
                            quota: rc.tenant_quota.expect("checked above"),
                        },
                    });
                } else if queue.len() < rc.queue_capacity {
                    queue.push_back(idx);
                    *queued_by_tenant.entry(tenant).or_insert(0) += 1;
                } else {
                    // Full queue. Shed low first: a high-priority arrival
                    // evicts the newest queued low-priority request;
                    // otherwise the arrival itself is rejected.
                    let evict = if requests[idx].priority == Priority::High {
                        queue.iter().rposition(|&q| requests[q].priority == Priority::Low)
                    } else {
                        None
                    };
                    self.metrics.counter_add("serve/query/rejected", 1);
                    if let Some(pos) = evict {
                        let victim = queue.remove(pos).expect("in range");
                        *queued_by_tenant.entry(requests[victim].tenant).or_insert(1) -= 1;
                        self.metrics.counter_add("serve/query/shed_low", 1);
                        rejections.push(Rejection {
                            index: victim,
                            arrival: requests[victim].arrival,
                            error: ServeError::Overloaded {
                                queued: rc.queue_capacity,
                                capacity: rc.queue_capacity,
                            },
                        });
                        queue.push_back(idx);
                        *queued_by_tenant.entry(tenant).or_insert(0) += 1;
                    } else {
                        rejections.push(Rejection {
                            index: idx,
                            arrival: t,
                            error: ServeError::Overloaded {
                                queued: queue.len(),
                                capacity: rc.queue_capacity,
                            },
                        });
                    }
                }
            } else {
                // Graceful drain complete: no arrivals left, queue empty.
                break;
            }
        }
        completions.sort_by_key(|c| c.index);
        Ok(RunReport { completions, rejections, busy_seconds, makespan })
    }
}

/// CRC-32 fingerprint of a tensor's little-endian payload bytes.
pub fn tensor_crc<T: IoScalar>(t: &Tensor<T>) -> u32 {
    struct Sink(Crc32);
    impl std::io::Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.update(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut sink = Sink(Crc32::new());
    for &v in t.data() {
        v.write_le(&mut sink).expect("CRC sink cannot fail");
    }
    sink.0.finish()
}

/// Scheduling class of a request. Under overload the bounded queue sheds
/// [`Priority::Low`] traffic first: a high-priority arrival finding the
/// queue full evicts the newest queued low-priority request instead of
/// being rejected itself (graceful degradation instead of collapse).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Interactive traffic; shed last.
    #[default]
    High,
    /// Best-effort traffic; shed first under overload.
    Low,
}

/// A timestamped request for the serving loop.
#[derive(Clone, Debug)]
pub struct Request {
    /// Virtual arrival time, seconds.
    pub arrival: f64,
    /// The query.
    pub query: Query,
    /// Tenant the request is billed to, for per-tenant admission quotas.
    pub tenant: usize,
    /// Scheduling class under overload.
    pub priority: Priority,
}

impl Request {
    /// A high-priority request from the default tenant.
    pub fn new(arrival: f64, query: Query) -> Self {
        Request { arrival, query, tenant: 0, priority: Priority::High }
    }
}

/// Serving-loop shape.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Concurrent workers.
    pub workers: usize,
    /// Bounded admission queue capacity.
    pub queue_capacity: usize,
    /// Max queries dispatched as one batch.
    pub batch_limit: usize,
    /// Per-tenant cap on queued requests; `None` disables quotas. A tenant
    /// at its cap gets a typed [`ServeError::QuotaExceeded`] even when the
    /// queue itself has room.
    pub tenant_quota: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            workers: 1,
            queue_capacity: usize::MAX,
            batch_limit: 16,
            tenant_quota: None,
        }
    }
}

/// One admitted request, served to completion.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Index into the submitted request slice.
    pub index: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Dispatch time (arrival + queueing).
    pub dispatch: f64,
    /// Completion time.
    pub finish: f64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// Result elements.
    pub elems: usize,
    /// CRC-32 of the result payload.
    pub crc: u32,
}

/// One request denied admission.
#[derive(Debug)]
pub struct Rejection {
    /// Index into the submitted request slice.
    pub index: usize,
    /// Arrival time.
    pub arrival: f64,
    /// [`ServeError::Overloaded`] (full queue, or a low-priority request
    /// shed to admit a high-priority one) or [`ServeError::QuotaExceeded`].
    pub error: ServeError,
}

/// Outcome of a serving-loop run.
#[derive(Debug)]
pub struct RunReport {
    /// Every admitted request, in submission order.
    pub completions: Vec<Completion>,
    /// Every rejected request.
    pub rejections: Vec<Rejection>,
    /// Total worker-busy virtual seconds.
    pub busy_seconds: f64,
    /// Virtual time at which the last request finished.
    pub makespan: f64,
}

impl RunReport {
    /// Sorted end-to-end latencies (finish − arrival), seconds.
    pub fn latencies_sorted(&self) -> Vec<f64> {
        let mut l: Vec<f64> = self.completions.iter().map(|c| c.finish - c.arrival).collect();
        l.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        l
    }

    /// Latency quantile (`q` clamped to `[0, 1]`) with linear interpolation
    /// between order statistics: quantile `q` sits at fractional position
    /// `q·(n−1)` of the sorted samples, and values between two samples are
    /// blended by the fractional part. Returns `None` when nothing
    /// completed (e.g. a rejection-only overload run) — callers must not
    /// read that as "p99 = 0" — or when the interpolated value is not
    /// finite.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        interpolated_quantile(&self.latencies_sorted(), q)
    }

    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completions.len() as f64 / self.makespan
        } else {
            0.0
        }
    }
}

/// Linearly interpolated quantile over sorted samples; `None` when empty
/// or not finite. Shared by [`RunReport`] and the tier's
/// [`TierReport`](crate::router::TierReport).
pub(crate) fn interpolated_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let v = sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64);
    v.is_finite().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_latencies(lat: &[f64]) -> RunReport {
        let completions = lat
            .iter()
            .enumerate()
            .map(|(i, &l)| Completion {
                index: i,
                arrival: 0.0,
                dispatch: 0.0,
                finish: l,
                batch_size: 1,
                elems: 1,
                crc: 0,
            })
            .collect();
        RunReport { completions, rejections: Vec::new(), busy_seconds: 0.0, makespan: 1.0 }
    }

    #[test]
    fn latency_quantile_is_none_on_zero_samples() {
        let r = report_with_latencies(&[]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(r.latency_quantile(q), None, "empty set has no quantile");
        }
    }

    #[test]
    fn latency_quantile_one_sample_is_that_sample_at_every_q() {
        let r = report_with_latencies(&[0.25]);
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(r.latency_quantile(q), Some(0.25));
        }
    }

    #[test]
    fn latency_quantile_two_samples_interpolates_linearly() {
        let r = report_with_latencies(&[1.0, 3.0]);
        assert_eq!(r.latency_quantile(0.0), Some(1.0));
        assert_eq!(r.latency_quantile(1.0), Some(3.0));
        // Nearest-rank would snap to a sample; the median must now be the
        // midpoint, and p75 three quarters of the way up.
        assert_eq!(r.latency_quantile(0.5), Some(2.0));
        assert_eq!(r.latency_quantile(0.75), Some(2.5));
        // Out-of-range q clamps instead of indexing out of bounds.
        assert_eq!(r.latency_quantile(-1.0), Some(1.0));
        assert_eq!(r.latency_quantile(7.0), Some(3.0));
    }

    #[test]
    fn latency_quantile_rejects_non_finite_interpolants() {
        let r = report_with_latencies(&[1.0, f64::INFINITY]);
        assert_eq!(r.latency_quantile(1.0), None, "infinite sample is not a quantile");
        assert_eq!(r.latency_quantile(0.0), Some(1.0));
    }
}
