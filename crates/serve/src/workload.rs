//! Seeded synthetic stores and request traces for serving benchmarks.
//!
//! Everything here is a pure function of the seed (SplitMix64), so the
//! `bench serve` artifact is reproducible bit-for-bit across machines. The
//! query mix is deliberately skewed toward shapes that *share* mode-0
//! partials — hot slices and fibers over a few popular blocks — which is
//! the workload regime batching and caching exist for; the mix fractions
//! are configurable for colder traces.

use crate::engine::Request;
use crate::query::{ModeSel, Query};
use tucker_core::TuckerTensor;
use tucker_linalg::Matrix;
use tucker_tensor::io::IoScalar;
use tucker_tensor::Tensor;

/// SplitMix64: tiny, seedable, and plenty for workload shaping.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Shape of a synthetic serving workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Original tensor dimensions of the synthetic store.
    pub dims: Vec<usize>,
    /// Stored multilinear ranks.
    pub ranks: Vec<usize>,
    /// Number of requests in the trace.
    pub requests: usize,
    /// Mean arrival spacing in virtual seconds (exponential gaps).
    pub mean_gap: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of "hot" mode-0 blocks popular queries concentrate on.
    pub hot_blocks: usize,
    /// Fraction of requests hitting a hot block (the rest roam).
    pub hot_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dims: vec![96, 80, 72],
            ranks: vec![24, 20, 18],
            requests: 400,
            mean_gap: 2.0e-4,
            seed: 0x5EED_7CC4,
            hot_blocks: 4,
            hot_fraction: 0.8,
        }
    }
}

/// Deterministic in-memory decomposition for benching: smooth trig factors
/// and core, no ST-HOSVD run needed. Serving never assumes orthonormality.
pub fn synthetic_store<T: IoScalar>(dims: &[usize], ranks: &[usize]) -> TuckerTensor<T> {
    let core = Tensor::from_fn(ranks, |idx| {
        let mut acc = 0.0f64;
        for (n, &i) in idx.iter().enumerate() {
            acc += ((i * (n + 2) + 1) as f64 * 0.61).sin();
        }
        T::from_f64(acc)
    });
    let factors = dims
        .iter()
        .zip(ranks)
        .enumerate()
        .map(|(n, (&d, &r))| {
            Matrix::from_fn(d, r, |i, j| T::from_f64(((i * r + j + 3 * n + 1) as f64 * 0.23).cos()))
        })
        .collect();
    TuckerTensor { core, factors }
}

/// Generate the seeded request trace: arrival times with exponential gaps,
/// queries drawn from a mix of slices, fibers, elements, hyperslabs, and
/// strided downsamples concentrated on a few hot mode-0 blocks.
pub fn synthetic_trace(cfg: &WorkloadConfig) -> Vec<Request> {
    assert!(!cfg.dims.is_empty(), "workload needs at least one mode");
    let mut rng = SplitMix64::new(cfg.seed);
    let nmodes = cfg.dims.len();
    let block = 32usize;
    let nblocks = cfg.dims[0].div_ceil(block).max(1);
    let hot: Vec<usize> =
        (0..cfg.hot_blocks.min(nblocks)).map(|_| rng.below(nblocks)).collect();

    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        // Exponential inter-arrival gap: -mean · ln(1 - u).
        t += -cfg.mean_gap * (1.0 - rng.f64()).ln();
        // Pick the mode-0 locality: a hot block or anywhere.
        let b = if !hot.is_empty() && rng.f64() < cfg.hot_fraction {
            hot[rng.below(hot.len())]
        } else {
            rng.below(nblocks)
        };
        let b0 = b * block;
        let bw = block.min(cfg.dims[0] - b0);
        let shape = rng.below(10);
        let mut sel = Vec::with_capacity(nmodes);
        match shape {
            // 0-3: mode-0 fiber through the hot block — the shape that
            // shares the block partial best (tail is a dot product).
            0..=3 => {
                sel.push(ModeSel::Strided { start: b0, step: 1, count: bw });
                for &d in &cfg.dims[1..] {
                    sel.push(ModeSel::Index(rng.below(d)));
                }
            }
            // 4-6: thin slab — the block in mode 0, narrow windows after.
            4..=6 => {
                sel.push(ModeSel::Strided { start: b0, step: 1, count: bw });
                for &d in &cfg.dims[1..] {
                    let w = (d / 8).max(1);
                    let start = rng.below(d - w + 1);
                    sel.push(ModeSel::Range(start, start + w));
                }
            }
            // 7: single element inside the block.
            7 => {
                sel.push(ModeSel::Index(b0 + rng.below(bw)));
                for &d in &cfg.dims[1..] {
                    sel.push(ModeSel::Index(rng.below(d)));
                }
            }
            // 8: strided downsample of the block × small ranges.
            8 => {
                let step = 1 + rng.below(3);
                sel.push(ModeSel::Strided { start: b0, step, count: bw.div_ceil(step) });
                for &d in &cfg.dims[1..] {
                    let w = (d / 4).max(1);
                    let start = rng.below(d - w + 1);
                    sel.push(ModeSel::Range(start, start + w));
                }
            }
            // 9: general hyperslab anywhere (the cold, unaligned tail).
            _ => {
                for &d in &cfg.dims {
                    let w = (d / 4).max(1);
                    let start = rng.below(d - w + 1);
                    sel.push(ModeSel::Range(start, start + w));
                }
            }
        }
        out.push(Request::new(t, Query { sel }));
    }
    out
}

/// Assign tenants and priorities to an existing trace in a second seeded
/// pass: tenant uniform over `tenants`, priority low with probability
/// `low_fraction`. A separate RNG keeps arrivals and queries bit-identical
/// to the plain [`synthetic_trace`] output, so multi-tenant runs stay
/// CRC-comparable with single-tenant ones.
pub fn assign_tenants(trace: &mut [Request], tenants: usize, low_fraction: f64, seed: u64) {
    assert!(tenants > 0, "need at least one tenant");
    let mut rng = SplitMix64::new(seed ^ 0x7E4A_4E75_0000_0001);
    for r in trace {
        r.tenant = rng.below(tenants);
        r.priority = if rng.f64() < low_fraction {
            crate::engine::Priority::Low
        } else {
            crate::engine::Priority::High
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_valid() {
        let cfg = WorkloadConfig { requests: 64, ..WorkloadConfig::default() };
        let a = synthetic_trace(&cfg);
        let b = synthetic_trace(&cfg);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits());
            assert_eq!(x.query, y.query);
        }
        for r in &a {
            r.query.validate(&cfg.dims).expect("generated queries must be valid");
        }
        // Arrivals are sorted by construction.
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn different_seeds_differ() {
        let base = WorkloadConfig { requests: 32, ..WorkloadConfig::default() };
        let other = WorkloadConfig { seed: 99, ..base.clone() };
        let a = synthetic_trace(&base);
        let b = synthetic_trace(&other);
        assert!(a.iter().zip(&b).any(|(x, y)| x.query != y.query));
    }

    #[test]
    fn synthetic_store_matches_requested_shape() {
        let tk: TuckerTensor<f64> = synthetic_store(&[10, 8], &[4, 3]);
        assert_eq!(tk.original_dims(), vec![10, 8]);
        assert_eq!(tk.ranks(), vec![4, 3]);
    }
}
