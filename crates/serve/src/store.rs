//! Read-only Tucker stores with a pre-packed core operand.
//!
//! A [`TuckerStore`] wraps a checksummed TUCK file (or an in-memory
//! [`TuckerTensor`]) for query serving. At open time the mode-0 unfolding of
//! the core is packed once ([`PackedA`]) and reused by every query's first
//! contraction — the dominant GEMM of a partial reconstruction — instead of
//! being re-packed per call.
//!
//! ## Bit-identity of the packed mode-0 contraction
//!
//! `reconstruct()` computes the mode-0 TTM as `C = U_0 · G_(0)` (column-major
//! output). The store instead computes `Cᵀ = G_(0)ᵀ · U_0ᵀ` against the
//! cached pack and transpose-copies the result. Per the kernel determinism
//! contract (`tucker_linalg::kernel`), an output element's accumulation
//! order depends only on the inner-dimension blocking — identical in both
//! forms — and IEEE multiplication commutes, so `Cᵀ[j,i]` carries exactly
//! the bits of `C[i,j]`. Row selection is equally safe: packing only the
//! selected rows of `U_0` never changes any kept element's k-loop. The
//! equivalence proptests in this crate pin both properties.

use crate::error::ServeError;
use tucker_core::tucker_io::{read_tucker, read_tucker_header, TuckerIoError};
use tucker_core::TuckerTensor;
use tucker_linalg::{gemm_prepacked, gemm_prepacked_batch, MatMut, MatRef, Matrix, PackedA};
use tucker_tensor::io::IoScalar;
use tucker_tensor::{SlabSel, Tensor};

/// A Tucker decomposition opened for serving, with the transposed core
/// unfolding `G_(0)ᵀ` packed once for reuse across queries.
pub struct TuckerStore<T: IoScalar> {
    tucker: TuckerTensor<T>,
    packed_core_t: PackedA<T>,
    dims: Vec<usize>,
    ranks: Vec<usize>,
}

impl<T: IoScalar> TuckerStore<T> {
    /// Open a TUCK file read-only, verifying every section checksum.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, ServeError> {
        Ok(Self::from_tucker(read_tucker::<T>(path)?))
    }

    /// Serve an in-memory decomposition (tests, benches).
    pub fn from_tucker(tucker: TuckerTensor<T>) -> Self {
        let ranks = tucker.ranks();
        let dims = tucker.original_dims();
        let r0 = ranks.first().copied().unwrap_or(1);
        let rest: usize = ranks.iter().skip(1).product();
        // G_(0) is the col-major (R_0 × rest) view of the core buffer; its
        // transpose view is packed once here.
        let g0 = MatRef::col_major(tucker.core.data(), r0, rest);
        let packed_core_t = PackedA::new(g0.t());
        TuckerStore { tucker, packed_core_t, dims, ranks }
    }

    /// Original tensor dimensions `I_n`.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Stored multilinear ranks `R_n`.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// The underlying decomposition.
    pub fn tucker(&self) -> &TuckerTensor<T> {
        &self.tucker
    }

    /// Bytes of one stored scalar.
    pub fn scalar_bytes(&self) -> usize {
        T::TAG as usize
    }

    /// Selected rows of factor `n` as a zero-copy strided view:
    /// `(start, step, count)` rows of the col-major `I_n × R_n` matrix.
    pub fn factor_rows(&self, n: usize, sel: SlabSel) -> MatRef<'_, T> {
        let u = &self.tucker.factors[n];
        let (start, step, count) = sel;
        MatRef::strided(&u.data()[start..], count, u.cols(), step, u.rows())
    }

    /// Contract mode 0 with the selected factor rows through the cached
    /// packed core: returns `G ×_0 U_0[sel]`, dims `[count, R_1, …]`.
    /// Bit-identical to the same rows of `ttm(core, 0, U_0, false)`.
    pub fn contract_mode0(&self, sel: SlabSel) -> Tensor<T> {
        let mut out = self.contract_mode0_batch(&[sel]);
        out.pop().expect("batch of one")
    }

    /// Batched mode-0 contraction: many row selections against the one
    /// packed core operand in a single [`gemm_prepacked_batch`] call — the
    /// serving loop's shared-work path. Each result is bit-identical to a
    /// solo [`TuckerStore::contract_mode0`] call.
    pub fn contract_mode0_batch(&self, sels: &[SlabSel]) -> Vec<Tensor<T>> {
        let rest: usize = self.ranks.iter().skip(1).product();
        let mut cts: Vec<Matrix<T>> =
            sels.iter().map(|&(_, _, count)| Matrix::zeros(rest, count)).collect();
        {
            let mut jobs: Vec<(MatRef<'_, T>, MatMut<'_, T>)> = sels
                .iter()
                .zip(&mut cts)
                .map(|(&sel, ct)| (self.factor_rows(0, sel).t(), ct.as_mut()))
                .collect();
            if jobs.len() == 1 {
                let (b, c) = &mut jobs[0];
                gemm_prepacked(T::ONE, &self.packed_core_t, *b, c);
            } else {
                gemm_prepacked_batch(T::ONE, &self.packed_core_t, &mut jobs);
            }
        }
        // Transpose-copy Cᵀ (rest × count, col-major) into tensor layout
        // [count, R_1, …] — a pure permutation of bits.
        sels.iter()
            .zip(cts)
            .map(|(&(_, _, count), ct)| {
                let mut ydims = self.ranks.clone();
                if ydims.is_empty() {
                    ydims = vec![count];
                } else {
                    ydims[0] = count;
                }
                let src = ct.data();
                let mut data = Vec::with_capacity(count * rest);
                for j in 0..rest {
                    for i in 0..count {
                        data.push(src[j + rest * i]);
                    }
                }
                Tensor::from_data(&ydims, data)
            })
            .collect()
    }

    /// Approximate resident bytes of the store (decomposition + pack).
    pub fn resident_bytes(&self) -> usize {
        let params = self.tucker.num_parameters();
        let r0 = self.ranks.first().copied().unwrap_or(1);
        let rest: usize = self.ranks.iter().skip(1).product();
        (params + rest * r0) * self.scalar_bytes()
    }
}

/// A store opened at whichever precision the file holds.
pub enum AnyStore {
    /// Single precision.
    F32(TuckerStore<f32>),
    /// Double precision.
    F64(TuckerStore<f64>),
}

/// Open a store, dispatching on the file's stored scalar width.
pub fn open_any(path: impl AsRef<std::path::Path>) -> Result<AnyStore, ServeError> {
    let header = read_tucker_header(&path).map_err(ServeError::Io)?;
    match header.scalar {
        4 => Ok(AnyStore::F32(TuckerStore::open(path)?)),
        8 => Ok(AnyStore::F64(TuckerStore::open(path)?)),
        w => Err(ServeError::Io(TuckerIoError::Format(format!("unknown scalar width {w}")))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tucker_tensor::{hyperslab, ttm};

    fn sample_store() -> TuckerStore<f64> {
        // Deterministic non-orthogonal factors are fine: serving only
        // contracts, it never assumes orthonormality.
        let ranks = [4usize, 3, 5];
        let dims = [9usize, 7, 8];
        let core = Tensor::from_fn(&ranks, |i| ((i[0] * 15 + i[1] * 5 + i[2]) as f64 * 0.37).sin());
        let factors = dims
            .iter()
            .zip(&ranks)
            .enumerate()
            .map(|(n, (&d, &r))| {
                Matrix::from_fn(d, r, |i, j| ((i * r + j + n) as f64 * 0.21).cos())
            })
            .collect();
        TuckerStore::from_tucker(TuckerTensor { core, factors })
    }

    #[test]
    fn packed_mode0_matches_ttm_bitwise() {
        let st = sample_store();
        let full = ttm(&st.tucker().core, 0, st.tucker().factors[0].as_ref(), false);
        // Full selection.
        let all = st.contract_mode0((0, 1, 9));
        assert_eq!(all.dims(), full.dims());
        assert_eq!(all.data(), full.data(), "full mode-0 contraction must be bit-identical");
        // Strided row selection = the same rows of the full result.
        let sel = st.contract_mode0((1, 3, 3));
        let want = hyperslab(&full, &[(1, 3, 3), (0, 1, 3), (0, 1, 5)]);
        assert_eq!(sel.data(), want.data());
    }

    #[test]
    fn batch_matches_solo_bitwise() {
        let st = sample_store();
        let sels = [(0usize, 1usize, 9usize), (2, 2, 3), (4, 1, 1), (0, 4, 3)];
        let batch = st.contract_mode0_batch(&sels);
        for (&sel, got) in sels.iter().zip(&batch) {
            let solo = st.contract_mode0(sel);
            assert_eq!(got.data(), solo.data());
        }
    }

    #[test]
    fn factor_rows_views_are_exact() {
        let st = sample_store();
        let v = st.factor_rows(1, (2, 2, 3));
        let u = &st.tucker().factors[1];
        for i in 0..3 {
            for j in 0..u.cols() {
                assert_eq!(v.get(i, j), u[(2 + 2 * i, j)]);
            }
        }
    }
}
