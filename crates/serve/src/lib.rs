//! # tucker-serve — compressed-tensor query engine
//!
//! Serves reconstruction queries (elements, fibers, slices, hyperslabs,
//! strided downsamples) directly from a Tucker decomposition without ever
//! materializing the full tensor. The crate layers as:
//!
//! - [`store`] — read-only [`TuckerStore`] over a checksummed TUCK file,
//!   with the mode-0 core unfolding packed once for all queries;
//! - [`query`] — the [`Query`] selection model and its CLI slab-spec parser;
//! - [`plan`] — the §3.5-style cost model choosing contraction order;
//! - [`cache`] — deterministic byte-budgeted LRU of partial contractions;
//! - [`engine`] — batched execution plus a deterministic virtual-time
//!   serving loop with bounded-queue admission control, per-tenant quotas,
//!   and shed-low-first priorities;
//! - [`replica`] — mode-0 sharding ([`ShardMap`]) and the replicated rank
//!   tier with mpisim fault interpretation and a shared crash registry;
//! - [`router`] — consistent-hash routing, failover with capped
//!   exponential backoff, per-query timeouts, and mode-0 reassembly;
//! - [`obs`] — request-scoped tracing ([`TraceContext`], span lanes merged
//!   into the mpisim Chrome-trace export), the deterministic `serve-log-v1`
//!   structured log, SLO evaluation ([`evaluate_slo`]), and per-query
//!   critical-path attribution;
//! - [`workload`] — seeded synthetic request traces;
//! - [`bench`] — the `bench serve` / `serve-bench --shards` /
//!   `bench observability` harnesses behind `BENCH_pr5.json`,
//!   `BENCH_pr7.json`, and `BENCH_pr9.json`.
//!
//! The engine's default path ([`OrderPolicy::Exact`]) is **bit-identical**
//! to slicing `TuckerTensor::reconstruct()` — see the determinism argument
//! in [`store`] and the equivalence proptests under `tests/`.

pub mod bench;
pub mod cache;
pub mod engine;
pub mod error;
pub mod obs;
pub mod plan;
pub mod query;
pub mod replica;
pub mod router;
pub mod store;
pub mod workload;

pub use bench::{
    run_failover_bench, run_observability_bench, run_serve_bench, run_tier_workload,
    FailoverBenchResult, ObservabilityBenchResult, ServeBenchResult,
};
pub use cache::{CacheStats, ContractionCache, PartialKey};
pub use engine::{
    tensor_crc, BatchOutput, Completion, Engine, EngineConfig, Priority, QueryCost, QueryOutput,
    Rejection, Request, RunConfig, RunReport,
};
pub use error::ServeError;
pub use obs::{
    evaluate_slo, EngineSpan, EngineStep, LogLevel, ObsConfig, Observer, SloObjective, SloPolicy,
    SloReport, TraceContext,
};
pub use plan::{plan, OrderPolicy, QueryPlan};
pub use query::{ModeSel, Query, QueryKind};
pub use replica::{ReplicaTier, ShardMap};
pub use router::{
    RetryPolicy, Router, TierCompletion, TierFailure, TierReport, TierRunConfig,
};
pub use store::{open_any, AnyStore, TuckerStore};
pub use workload::{assign_tenants, synthetic_store, synthetic_trace, WorkloadConfig};
