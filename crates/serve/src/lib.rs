//! # tucker-serve — compressed-tensor query engine
//!
//! Serves reconstruction queries (elements, fibers, slices, hyperslabs,
//! strided downsamples) directly from a Tucker decomposition without ever
//! materializing the full tensor. The crate layers as:
//!
//! - [`store`] — read-only [`TuckerStore`] over a checksummed TUCK file,
//!   with the mode-0 core unfolding packed once for all queries;
//! - [`query`] — the [`Query`] selection model and its CLI slab-spec parser;
//! - [`plan`] — the §3.5-style cost model choosing contraction order;
//! - [`cache`] — deterministic byte-budgeted LRU of partial contractions;
//! - [`engine`] — batched execution plus a deterministic virtual-time
//!   serving loop with bounded-queue admission control;
//! - [`workload`] — seeded synthetic request traces;
//! - [`bench`] — the `bench serve` harness behind `BENCH_pr5.json`.
//!
//! The engine's default path ([`OrderPolicy::Exact`]) is **bit-identical**
//! to slicing `TuckerTensor::reconstruct()` — see the determinism argument
//! in [`store`] and the equivalence proptests under `tests/`.

pub mod bench;
pub mod cache;
pub mod engine;
pub mod error;
pub mod plan;
pub mod query;
pub mod store;
pub mod workload;

pub use bench::{run_serve_bench, ServeBenchResult};
pub use cache::{CacheStats, ContractionCache, PartialKey};
pub use engine::{
    tensor_crc, BatchOutput, Completion, Engine, EngineConfig, QueryCost, QueryOutput, Rejection,
    Request, RunConfig, RunReport,
};
pub use error::ServeError;
pub use plan::{plan, OrderPolicy, QueryPlan};
pub use query::{ModeSel, Query, QueryKind};
pub use store::{open_any, AnyStore, TuckerStore};
pub use workload::{synthetic_store, synthetic_trace, WorkloadConfig};
