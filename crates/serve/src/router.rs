//! The query router: consistent-hash replica selection, failover with
//! capped exponential backoff, per-query timeouts, and the tier-level
//! admission loop.
//!
//! ## Routing
//!
//! Each shard owns a ring of [`VNODES`] hashed virtual nodes per replica;
//! a query hashes to a point on its shard's ring and walks clockwise to
//! produce a deterministic replica *preference order*. Dead replicas (per
//! the shared [`CrashRegistry`](tucker_mpisim::CrashRegistry)) are skipped
//! without consuming an attempt; live ones are tried in preference order,
//! rotating on failure.
//!
//! ## Failover contract
//!
//! A failed attempt — replica crash, lost message, or a response whose
//! CRC-32 disagrees with the replica's own fingerprint — is retried on the
//! next live replica after an exponential backoff (`backoff_base`, doubled
//! per failure, capped at `backoff_cap`), until [`RetryPolicy::max_attempts`]
//! or the per-query [`RetryPolicy::timeout`] budget runs out. Every outcome
//! is typed: an admitted query either completes **bit-identically** to the
//! unsharded engine (mode-0 row separability, see [`crate::replica`]) or
//! fails with [`ServeError::ReplicasExhausted`] / [`ServeError::Timeout`] —
//! a corrupt payload is never returned.
//!
//! ## Assembly
//!
//! A multi-shard query executes one shard-local piece per shard and gathers
//! the pieces along mode 0: with the first-mode-fastest layout, for every
//! trailing index the per-shard mode-0 runs are contiguous and are emitted
//! in ascending shard (= ascending global row) order, reproducing the
//! unsharded element order exactly.

use crate::engine::{tensor_crc, EngineConfig, Priority, Rejection, Request};
use crate::error::ServeError;
use crate::obs::{mix64, Field, LogLevel, ObsConfig, Observer, SpanName, TraceContext};
use crate::query::{ModeSel, Query};
use crate::replica::{Attempt, ReplicaTier};
use std::collections::{BTreeMap, VecDeque};
use tucker_core::TuckerTensor;
use tucker_mpisim::{FaultPlan, MetricsRegistry};
use tucker_tensor::io::IoScalar;
use tucker_tensor::{SlabSel, Tensor};

/// Virtual nodes per replica on each shard's hash ring.
const VNODES: usize = 16;

/// Failover knobs for one query.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per shard piece before giving up (≥ 1).
    pub max_attempts: u32,
    /// First backoff after a failed attempt, virtual seconds.
    pub backoff_base: f64,
    /// Backoff ceiling, virtual seconds.
    pub backoff_cap: f64,
    /// Per-query virtual-time budget: an attempt that would *start* more
    /// than this long after dispatch fails the query with
    /// [`ServeError::Timeout`].
    pub timeout: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff_base: 50e-6,
            backoff_cap: 800e-6,
            timeout: 0.25,
        }
    }
}

/// Tier serving-loop shape: the engine's admission semantics plus failover.
#[derive(Clone, Copy, Debug)]
pub struct TierRunConfig {
    /// Bounded admission queue capacity.
    pub queue_capacity: usize,
    /// Per-tenant cap on queued requests; `None` disables quotas.
    pub tenant_quota: Option<usize>,
    /// Failover policy applied to every admitted query.
    pub retry: RetryPolicy,
}

impl Default for TierRunConfig {
    fn default() -> Self {
        TierRunConfig {
            queue_capacity: usize::MAX,
            tenant_quota: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// One admitted request served to completion by the tier.
#[derive(Clone, Debug)]
pub struct TierCompletion {
    /// Index into the submitted request slice.
    pub index: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Dispatch time (arrival + queueing).
    pub dispatch: f64,
    /// Completion time (max over shard pieces, including retries).
    pub finish: f64,
    /// Shards the query spanned.
    pub shards: usize,
    /// Replica attempts consumed (≥ `shards`).
    pub attempts: u32,
    /// Failed attempts that were retried elsewhere.
    pub failovers: u32,
    /// Result elements.
    pub elems: usize,
    /// CRC-32 of the assembled result payload.
    pub crc: u32,
}

/// One admitted request the tier could not serve. Unlike the single-store
/// engine — whose only failure mode aborts the run — the tier degrades
/// per-query: the loop continues and the failure is typed.
#[derive(Debug)]
pub struct TierFailure {
    /// Index into the submitted request slice.
    pub index: usize,
    /// Arrival time.
    pub arrival: f64,
    /// Why the query failed (`ReplicasExhausted`, `Timeout`, `BadQuery`).
    pub error: ServeError,
}

/// Outcome of a tier run.
#[derive(Debug)]
pub struct TierReport {
    /// Every served request, in submission order.
    pub completions: Vec<TierCompletion>,
    /// Every request denied admission (typed `Overloaded`/`QuotaExceeded`).
    pub rejections: Vec<Rejection>,
    /// Every admitted request that failed after admission.
    pub failures: Vec<TierFailure>,
    /// Total replica-busy virtual seconds (including work discarded to
    /// integrity failures).
    pub busy_seconds: f64,
    /// Virtual time at which the last event happened.
    pub makespan: f64,
    /// Worst observed failover recovery: max over completed queries of
    /// (finish − first failed attempt), virtual seconds. `None` when no
    /// admitted query ever saw a failed attempt.
    pub failover_recovery_vt: Option<f64>,
}

impl TierReport {
    /// Sorted end-to-end latencies (finish − arrival), seconds.
    pub fn latencies_sorted(&self) -> Vec<f64> {
        let mut l: Vec<f64> =
            self.completions.iter().map(|c| c.finish - c.arrival).collect();
        l.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        l
    }

    /// Latency quantile (`q` clamped to `[0, 1]`) with linear interpolation
    /// between order statistics; `None` when nothing completed or when the
    /// interpolated value is not finite.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        crate::engine::interpolated_quantile(&self.latencies_sorted(), q)
    }

    /// Completed requests per virtual second.
    pub fn throughput(&self) -> f64 {
        if self.makespan > 0.0 {
            self.completions.len() as f64 / self.makespan
        } else {
            0.0
        }
    }
}

/// Per-query failover bookkeeping.
#[derive(Default)]
struct QueryStats {
    attempts: u32,
    failovers: u32,
    first_failure: Option<f64>,
    busy: f64,
}

impl QueryStats {
    fn note_failure(&mut self, at: f64) {
        self.failovers += 1;
        self.first_failure = Some(match self.first_failure {
            Some(f) => f.min(at),
            None => at,
        });
    }
}

/// Where a query lands on its shard's ring: a pure function of the mode-0
/// selection and the tenant, so routing is deterministic and replayable.
fn route_key(sel0: SlabSel, tenant: usize) -> u64 {
    let (start, step, count) = sel0;
    mix64(start as u64 ^ mix64(step as u64 ^ mix64(count as u64 ^ mix64(tenant as u64))))
}

/// Gather shard pieces along mode 0 (ascending global-row order) into the
/// unsharded result layout. First-mode-fastest: for each trailing index,
/// each piece contributes one contiguous mode-0 run.
fn concat_mode0<T: IoScalar>(mut parts: Vec<Tensor<T>>) -> Tensor<T> {
    assert!(!parts.is_empty(), "concat of zero pieces");
    if parts.len() == 1 {
        return parts.pop().expect("non-empty");
    }
    let rest_dims: Vec<usize> = parts[0].dims()[1..].to_vec();
    let rest: usize = rest_dims.iter().product();
    let counts: Vec<usize> = parts.iter().map(|p| p.dims()[0]).collect();
    let total: usize = counts.iter().sum();
    let mut data = Vec::with_capacity(total * rest);
    for j in 0..rest {
        for (p, &cnt) in parts.iter().zip(&counts) {
            data.extend_from_slice(&p.data()[j * cnt..(j + 1) * cnt]);
        }
    }
    let mut dims = Vec::with_capacity(rest_dims.len() + 1);
    dims.push(total);
    dims.extend_from_slice(&rest_dims);
    Tensor::from_data(&dims, data)
}

/// The replicated tier's front door.
pub struct Router<T: IoScalar> {
    tier: ReplicaTier<T>,
    dims: Vec<usize>,
    rings: Vec<Vec<(u64, usize)>>,
    metrics: MetricsRegistry,
    obs: Observer,
}

impl<T: IoScalar> Router<T> {
    /// Shard `tk` `shards` ways, replicate each shard `replicas` times, and
    /// stand up the router with `plan`'s faults armed against world ranks.
    pub fn new(
        tk: &TuckerTensor<T>,
        shards: usize,
        replicas: usize,
        cfg: EngineConfig,
        plan: &FaultPlan,
    ) -> Self {
        Self::from_tier(ReplicaTier::new(tk, shards, replicas, cfg, plan))
    }

    /// Wrap an existing tier.
    pub fn from_tier(tier: ReplicaTier<T>) -> Self {
        let replicas = tier.replicas();
        let rings = (0..tier.shard_map().shards())
            .map(|shard| {
                let mut ring = Vec::with_capacity(replicas * VNODES);
                for rep in 0..replicas {
                    let rank = tier.rank(shard, rep);
                    for v in 0..VNODES {
                        let h = mix64(shard as u64 ^ mix64(rank as u64 ^ mix64(v as u64)));
                        ring.push((h, rank));
                    }
                }
                ring.sort_unstable();
                ring
            })
            .collect();
        let dims = tier.dims().to_vec();
        Router { tier, dims, rings, metrics: MetricsRegistry::default(), obs: Observer::off() }
    }

    /// The underlying tier.
    pub fn tier(&self) -> &ReplicaTier<T> {
        &self.tier
    }

    /// Switch observability collection on (or back off). Spans, log lines,
    /// and attribution only change side buffers: results, CRCs, virtual
    /// timings, and the serving order are bit-identical either way.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Observer::new(cfg, self.tier.world_size());
        self.tier.set_span_recording(cfg.tracing);
    }

    /// The observability sink (spans, structured log, attribution).
    pub fn observer(&self) -> &Observer {
        &self.obs
    }

    /// The router's metrics registry (`serve/replica/*`, `serve/retry/*`,
    /// `serve/failover_recovery_vt`, plus the engine's `serve/query/*`
    /// admission counters).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Replica preference order for a routing key: walk the shard's ring
    /// clockwise from the key's point, keeping first occurrences.
    fn preference(&self, shard: usize, key: u64) -> Vec<usize> {
        let ring = &self.rings[shard];
        let start = ring.partition_point(|&(h, _)| h < key);
        let mut order = Vec::with_capacity(self.tier.replicas());
        for i in 0..ring.len() {
            let (_, rank) = ring[(start + i) % ring.len()];
            if !order.contains(&rank) {
                order.push(rank);
                if order.len() == self.tier.replicas() {
                    break;
                }
            }
        }
        order
    }

    /// Earliest virtual time the request could start: its arrival, pushed
    /// out by the busiest-shard best-replica clock. Only paces the dispatch
    /// loop — attempts re-derive start times per replica.
    fn ready_time(&self, req: &Request) -> f64 {
        if req.query.validate(&self.dims).is_err() {
            return req.arrival; // dispatch immediately; fails typed
        }
        let sel0 = req.query.normalized(&self.dims)[0];
        let mut ready = req.arrival;
        for (shard, _) in self.tier.shard_map().split(sel0) {
            let mut best = f64::INFINITY;
            for rep in 0..self.tier.replicas() {
                let rank = self.tier.rank(shard, rep);
                if !self.tier.registry().is_crashed(rank) {
                    best = best.min(self.tier.clock(rank));
                }
            }
            if best.is_finite() {
                ready = ready.max(best);
            }
        }
        ready
    }

    /// Record one failed attempt: spans for the failed window and the
    /// backoff that follows it, a fault instant on the replica lane, a
    /// `warn` log line, and backoff attribution.
    #[allow(clippy::too_many_arguments)]
    fn note_failed_attempt(
        &mut self,
        index: usize,
        ctx: TraceContext,
        shard: usize,
        rank: usize,
        k: u32,
        at: f64,
        span_start: Option<(f64, f64)>,
        backoff: f64,
        cause: &'static str,
    ) {
        if self.obs.tracing() {
            let replica = rank % self.tier.replicas();
            let (s0, dur) = span_start.unwrap_or((at, 0.0));
            self.obs.span(
                rank,
                s0,
                SpanName::Attempt { index, k, shard, replica, outcome: cause },
                dur,
            );
            self.obs.fault(rank, at, format!("q{index} attempt#{k} {cause} on r{rank}"));
            let lane = self.obs.router_lane();
            self.obs.span(lane, at, SpanName::Backoff { index, k }, backoff);
            if dur > 0.0 {
                self.obs.attr(index, "contraction", dur, 0.0, 0, 0);
            }
            self.obs.attr(index, "backoff", backoff, 0.0, 0, 0);
        }
        if self.obs.logging(LogLevel::Warn) {
            self.obs.log(
                LogLevel::Warn,
                at,
                "failover",
                Some(ctx),
                &[
                    ("query", Field::U(index as u64)),
                    ("shard", Field::U(shard as u64)),
                    ("rank", Field::U(rank as u64)),
                    ("attempt", Field::U(k as u64)),
                    ("cause", Field::S(cause)),
                    ("backoff", Field::F(backoff)),
                ],
                "attempt failed; retrying on next live replica",
            );
        }
    }

    /// Serve one shard-local piece with failover: try live replicas in
    /// preference order, backing off exponentially after each failure.
    #[allow(clippy::too_many_arguments)]
    fn serve_piece(
        &mut self,
        index: usize,
        ctx: TraceContext,
        shard: usize,
        q: &Query,
        t0: f64,
        key: u64,
        policy: &RetryPolicy,
        stats: &mut QueryStats,
    ) -> Result<(Tensor<T>, f64), ServeError> {
        let pref = self.preference(shard, key);
        let mut t = t0;
        let mut backoff = policy.backoff_base.max(0.0);
        let mut tried: u32 = 0;
        loop {
            let alive: Vec<usize> = pref
                .iter()
                .copied()
                .filter(|&r| !self.tier.registry().is_crashed(r))
                .collect();
            if alive.is_empty() || tried >= policy.max_attempts {
                self.metrics.counter_add("serve/retry/exhausted", 1);
                let dead: Vec<usize> = self
                    .tier
                    .registry()
                    .crashed_ranks()
                    .into_iter()
                    .filter(|&r| self.tier.shard_of(r) == shard)
                    .collect();
                if self.obs.tracing() {
                    let lane = self.obs.router_lane();
                    self.obs.fault(
                        lane,
                        t,
                        format!("q{index} s{shard} replicas exhausted after {tried} attempts"),
                    );
                }
                if self.obs.logging(LogLevel::Error) {
                    self.obs.log(
                        LogLevel::Error,
                        t,
                        "exhausted",
                        Some(ctx),
                        &[
                            ("query", Field::U(index as u64)),
                            ("shard", Field::U(shard as u64)),
                            ("attempts", Field::U(tried as u64)),
                            ("dead", Field::U(dead.len() as u64)),
                        ],
                        "no live replica answered",
                    );
                }
                return Err(ServeError::ReplicasExhausted { shard, attempts: tried, dead });
            }
            let rank = alive[tried as usize % alive.len()];
            let start = t.max(self.tier.clock(rank));
            if start - t0 > policy.timeout {
                self.metrics.counter_add("serve/retry/timeouts", 1);
                if self.obs.tracing() {
                    let lane = self.obs.router_lane();
                    self.obs.fault(
                        lane,
                        start,
                        format!("q{index} s{shard} timeout after {tried} attempts"),
                    );
                }
                if self.obs.logging(LogLevel::Error) {
                    self.obs.log(
                        LogLevel::Error,
                        start,
                        "timeout",
                        Some(ctx),
                        &[
                            ("query", Field::U(index as u64)),
                            ("shard", Field::U(shard as u64)),
                            ("elapsed", Field::F(start - t0)),
                            ("budget", Field::F(policy.timeout)),
                        ],
                        "per-query budget exhausted before an attempt could start",
                    );
                }
                return Err(ServeError::Timeout {
                    shard,
                    elapsed: start - t0,
                    budget: policy.timeout,
                });
            }
            tried += 1;
            stats.attempts += 1;
            let k = tried - 1;
            let actx = ctx.child(k as u64);
            self.metrics.counter_add("serve/retry/attempts", 1);
            self.metrics.counter_add(&format!("serve/replica/r{rank}/attempts"), 1);
            if self.obs.tracing() {
                // Replica-availability wait between target choice and start.
                self.obs.attr(index, "routing", (start - t).max(0.0), 0.0, 0, 1);
            }
            match self.tier.attempt(rank, q, t) {
                Attempt::Served { tensor, crc, finish, sub } => {
                    stats.busy += finish - start;
                    // Verify end-to-end: the router trusts its own CRC of
                    // the received payload, not the replica's word.
                    if tensor_crc(&tensor) != crc {
                        self.metrics.counter_add("serve/retry/integrity_failures", 1);
                        self.metrics.counter_add("serve/retry/failovers", 1);
                        stats.note_failure(finish);
                        self.note_failed_attempt(
                            index,
                            actx,
                            shard,
                            rank,
                            k,
                            finish,
                            Some((start, finish - start)),
                            backoff,
                            "corrupt",
                        );
                        t = finish + backoff;
                        backoff = (backoff * 2.0).min(policy.backoff_cap);
                        continue;
                    }
                    self.metrics.counter_add(&format!("serve/replica/r{rank}/served"), 1);
                    if self.obs.tracing() {
                        let replica = rank % self.tier.replicas();
                        self.obs.span(
                            rank,
                            start,
                            SpanName::Attempt { index, k, shard, replica, outcome: "ok" },
                            finish - start,
                        );
                        for s in &sub {
                            self.obs.span(
                                rank,
                                start + s.offset,
                                SpanName::Engine { index, step: s.step },
                                s.dur,
                            );
                        }
                        let bytes = (tensor.len() * std::mem::size_of::<T>()) as u64;
                        self.obs.attr(index, "contraction", finish - start, 0.0, bytes, 0);
                    }
                    return Ok((tensor, finish));
                }
                Attempt::Crashed { at } => {
                    self.metrics.counter_add("serve/replica/crashes", 1);
                    self.metrics.counter_add("serve/retry/failovers", 1);
                    stats.note_failure(at);
                    self.note_failed_attempt(index, actx, shard, rank, k, at, None, backoff, "crash");
                    t = at + backoff;
                    backoff = (backoff * 2.0).min(policy.backoff_cap);
                }
                Attempt::Dropped { at } => {
                    self.metrics.counter_add("serve/retry/dropped", 1);
                    self.metrics.counter_add("serve/retry/failovers", 1);
                    stats.note_failure(at);
                    self.note_failed_attempt(index, actx, shard, rank, k, at, None, backoff, "drop");
                    t = at + backoff;
                    backoff = (backoff * 2.0).min(policy.backoff_cap);
                }
                Attempt::Failed(e) => return Err(e),
            }
        }
    }

    /// Serve one admitted request: split on mode 0, serve each piece (with
    /// failover) against its shard, and assemble.
    fn serve_one(
        &mut self,
        index: usize,
        req: &Request,
        t0: f64,
        rc: &TierRunConfig,
    ) -> Result<(TierCompletion, QueryStats), ServeError> {
        req.query.validate(&self.dims)?;
        let sels = req.query.normalized(&self.dims);
        let pieces = self.tier.shard_map().split(sels[0]);
        let key = route_key(sels[0], req.tenant);
        let ctx = TraceContext::mint(index, req.tenant);
        let mut stats = QueryStats::default();
        let mut parts = Vec::with_capacity(pieces.len());
        let mut finish = t0;
        for (pi, &(shard, local0)) in pieces.iter().enumerate() {
            // Pieces run on disjoint replica sets: each starts at dispatch
            // time, in parallel in virtual time.
            let mut lsel = sels.clone();
            lsel[0] = local0;
            let local = Query {
                sel: lsel
                    .iter()
                    .map(|&(start, step, count)| ModeSel::Strided { start, step, count })
                    .collect(),
            };
            let (tensor, f) = self.serve_piece(
                index,
                ctx.child(pi as u64),
                shard,
                &local,
                t0,
                key,
                &rc.retry,
                &mut stats,
            )?;
            finish = finish.max(f);
            parts.push(tensor);
        }
        let tensor = concat_mode0(parts);
        if self.obs.tracing() {
            let bytes = (tensor.len() * std::mem::size_of::<T>()) as u64;
            self.obs.attr(index, "reassembly", 0.0, 0.0, bytes, pieces.len() as u64);
        }
        Ok((
            TierCompletion {
                index,
                arrival: req.arrival,
                dispatch: t0,
                finish,
                shards: pieces.len(),
                attempts: stats.attempts,
                failovers: stats.failovers,
                elems: tensor.len(),
                crc: tensor_crc(&tensor),
            },
            stats,
        ))
    }

    /// Run a request trace through the tier in virtual time, with the
    /// engine's admission semantics (bounded queue, per-tenant quotas,
    /// shed-low-first) in front of failover-serving dispatch. Admitted
    /// queries either complete bit-identically to the unsharded engine or
    /// fail typed; the loop itself never aborts.
    pub fn run(&mut self, requests: &[Request], rc: &TierRunConfig) -> TierReport {
        assert!(rc.retry.max_attempts > 0, "run: need at least one attempt");
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival
                .partial_cmp(&requests[b].arrival)
                .expect("finite arrivals")
                .then(a.cmp(&b))
        });

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut queued_by_tenant: BTreeMap<usize, usize> = BTreeMap::new();
        let mut completions = Vec::new();
        let mut rejections = Vec::new();
        let mut failures = Vec::new();
        let mut busy_seconds = 0.0;
        let mut makespan = 0.0f64;
        let mut recovery: Option<f64> = None;
        let mut next = 0usize;

        loop {
            let next_arrival = order.get(next).map(|&i| requests[i].arrival);
            let can_dispatch = !queue.is_empty() && {
                let head = *queue.front().expect("non-empty");
                let free = self.ready_time(&requests[head]);
                match next_arrival {
                    Some(t) => free <= t,
                    None => true,
                }
            };
            if can_dispatch {
                let head = queue.pop_front().expect("non-empty");
                *queued_by_tenant.entry(requests[head].tenant).or_insert(1) -= 1;
                let t0 = self.ready_time(&requests[head]).max(requests[head].arrival);
                let tenant = requests[head].tenant;
                let ctx = TraceContext::mint(head, tenant);
                let wait = (t0 - requests[head].arrival).max(0.0);
                if self.obs.tracing() {
                    let lane = self.obs.router_lane();
                    self.obs.span(lane, requests[head].arrival, SpanName::Queue { index: head }, wait);
                    self.obs.attr(head, "queue", wait, 0.0, 0, 0);
                }
                if self.obs.logging(LogLevel::Debug) {
                    self.obs.log(
                        LogLevel::Debug,
                        t0,
                        "dispatch",
                        Some(ctx),
                        &[
                            ("query", Field::U(head as u64)),
                            ("tenant", Field::U(tenant as u64)),
                            ("queue_wait", Field::F(wait)),
                        ],
                        "dispatching admitted query",
                    );
                }
                match self.serve_one(head, &requests[head], t0, rc) {
                    Ok((c, stats)) => {
                        makespan = makespan.max(c.finish);
                        busy_seconds += stats.busy;
                        if let Some(first) = stats.first_failure {
                            let rec = (c.finish - first).max(0.0);
                            recovery = Some(match recovery {
                                Some(r) => r.max(rec),
                                None => rec,
                            });
                        }
                        // Per-tenant SLO inputs are recorded unconditionally
                        // (pure virtual-time functions of the trace, so they
                        // are identical with observability on or off).
                        let latency = c.finish - c.arrival;
                        self.metrics.observe(
                            &format!("serve/tenant/t{tenant}/latency_ns"),
                            (latency * 1e9) as u64,
                        );
                        self.metrics.counter_add(&format!("serve/tenant/t{tenant}/completed"), 1);
                        let slow = latency > self.obs.config().slow_query_threshold;
                        if slow {
                            self.metrics.counter_add("serve/query/slow", 1);
                            self.obs.note_slow();
                        }
                        self.obs.finish_query(head, latency);
                        if self.obs.logging(LogLevel::Info) {
                            self.obs.log(
                                LogLevel::Info,
                                c.finish,
                                "complete",
                                Some(ctx),
                                &[
                                    ("query", Field::U(head as u64)),
                                    ("tenant", Field::U(tenant as u64)),
                                    ("shards", Field::U(c.shards as u64)),
                                    ("attempts", Field::U(c.attempts as u64)),
                                    ("failovers", Field::U(c.failovers as u64)),
                                    ("latency", Field::F(latency)),
                                    ("crc", Field::U(c.crc as u64)),
                                ],
                                "query served",
                            );
                        }
                        if slow && self.obs.logging(LogLevel::Warn) {
                            self.obs.log(
                                LogLevel::Warn,
                                c.finish,
                                "slow_query",
                                Some(ctx),
                                &[
                                    ("query", Field::U(head as u64)),
                                    ("tenant", Field::U(tenant as u64)),
                                    ("latency", Field::F(latency)),
                                    (
                                        "threshold",
                                        Field::F(self.obs.config().slow_query_threshold),
                                    ),
                                ],
                                "latency over the slow-query threshold",
                            );
                        }
                        completions.push(c);
                    }
                    Err(error) => {
                        self.metrics.counter_add("serve/query/failed", 1);
                        self.metrics.counter_add(&format!("serve/tenant/t{tenant}/failed"), 1);
                        if self.obs.logging(LogLevel::Error) {
                            let why = error.to_string();
                            self.obs.log(
                                LogLevel::Error,
                                t0,
                                "query_failed",
                                Some(ctx),
                                &[
                                    ("query", Field::U(head as u64)),
                                    ("tenant", Field::U(tenant as u64)),
                                    ("error", Field::S(&why)),
                                ],
                                "admitted query lost",
                            );
                        }
                        failures.push(TierFailure {
                            index: head,
                            arrival: requests[head].arrival,
                            error,
                        });
                    }
                }
            } else if let Some(t) = next_arrival {
                let idx = order[next];
                next += 1;
                makespan = makespan.max(t);
                let tenant = requests[idx].tenant;
                let tenant_queued = queued_by_tenant.get(&tenant).copied().unwrap_or(0);
                if rc.tenant_quota.is_some_and(|quota| tenant_queued >= quota) {
                    self.metrics.counter_add("serve/query/rejected", 1);
                    self.metrics.counter_add("serve/query/quota_rejected", 1);
                    if self.obs.logging(LogLevel::Warn) {
                        self.obs.log(
                            LogLevel::Warn,
                            t,
                            "quota_rejected",
                            Some(TraceContext::mint(idx, tenant)),
                            &[
                                ("query", Field::U(idx as u64)),
                                ("tenant", Field::U(tenant as u64)),
                                ("queued", Field::U(tenant_queued as u64)),
                            ],
                            "tenant over its admission quota",
                        );
                    }
                    rejections.push(Rejection {
                        index: idx,
                        arrival: t,
                        error: ServeError::QuotaExceeded {
                            tenant,
                            queued: tenant_queued,
                            quota: rc.tenant_quota.expect("checked above"),
                        },
                    });
                } else if queue.len() < rc.queue_capacity {
                    queue.push_back(idx);
                    *queued_by_tenant.entry(tenant).or_insert(0) += 1;
                } else {
                    // Full queue: shed low-priority first, exactly like the
                    // single-store engine.
                    let evict = if requests[idx].priority == Priority::High {
                        queue.iter().rposition(|&q| requests[q].priority == Priority::Low)
                    } else {
                        None
                    };
                    self.metrics.counter_add("serve/query/rejected", 1);
                    if let Some(pos) = evict {
                        let victim = queue.remove(pos).expect("in range");
                        *queued_by_tenant.entry(requests[victim].tenant).or_insert(1) -= 1;
                        self.metrics.counter_add("serve/query/shed_low", 1);
                        if self.obs.logging(LogLevel::Warn) {
                            self.obs.log(
                                LogLevel::Warn,
                                t,
                                "shed_low",
                                Some(TraceContext::mint(victim, requests[victim].tenant)),
                                &[
                                    ("query", Field::U(victim as u64)),
                                    ("tenant", Field::U(requests[victim].tenant as u64)),
                                    ("evicted_for", Field::U(idx as u64)),
                                ],
                                "low-priority request shed for a high-priority arrival",
                            );
                        }
                        rejections.push(Rejection {
                            index: victim,
                            arrival: requests[victim].arrival,
                            error: ServeError::Overloaded {
                                queued: rc.queue_capacity,
                                capacity: rc.queue_capacity,
                            },
                        });
                        queue.push_back(idx);
                        *queued_by_tenant.entry(tenant).or_insert(0) += 1;
                    } else {
                        if self.obs.logging(LogLevel::Warn) {
                            self.obs.log(
                                LogLevel::Warn,
                                t,
                                "rejected",
                                Some(TraceContext::mint(idx, tenant)),
                                &[
                                    ("query", Field::U(idx as u64)),
                                    ("tenant", Field::U(tenant as u64)),
                                    ("queued", Field::U(queue.len() as u64)),
                                ],
                                "admission queue full",
                            );
                        }
                        rejections.push(Rejection {
                            index: idx,
                            arrival: t,
                            error: ServeError::Overloaded {
                                queued: queue.len(),
                                capacity: rc.queue_capacity,
                            },
                        });
                    }
                }
            } else {
                break;
            }
        }
        if let Some(r) = recovery {
            self.metrics.gauge_set("serve/failover_recovery_vt", r);
        }
        completions.sort_by_key(|c| c.index);
        TierReport {
            completions,
            rejections,
            failures,
            busy_seconds,
            makespan,
            failover_recovery_vt: recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, RunConfig};
    use crate::store::TuckerStore;
    use crate::workload::{synthetic_store, synthetic_trace, WorkloadConfig};
    use std::collections::BTreeMap;

    fn small_workload() -> (TuckerTensor<f64>, Vec<Request>) {
        let wl = WorkloadConfig {
            dims: vec![40, 24, 20],
            ranks: vec![10, 8, 6],
            requests: 60,
            ..WorkloadConfig::default()
        };
        (synthetic_store::<f64>(&wl.dims, &wl.ranks), synthetic_trace(&wl))
    }

    fn single_engine_crcs(tk: &TuckerTensor<f64>, trace: &[Request]) -> BTreeMap<usize, u32> {
        let mut engine =
            Engine::new(TuckerStore::from_tucker(tk.clone()), EngineConfig::default());
        let report = engine.run(trace, &RunConfig::default()).expect("single engine runs");
        report.completions.iter().map(|c| (c.index, c.crc)).collect()
    }

    #[test]
    fn healthy_tier_is_bit_identical_to_single_engine() {
        let (tk, trace) = small_workload();
        let baseline = single_engine_crcs(&tk, &trace);
        let mut router =
            Router::new(&tk, 3, 2, EngineConfig::default(), &FaultPlan::none());
        let report = router.run(&trace, &TierRunConfig::default());
        assert!(report.rejections.is_empty() && report.failures.is_empty());
        assert_eq!(report.completions.len(), trace.len());
        for c in &report.completions {
            assert_eq!(c.crc, baseline[&c.index], "request {} diverged", c.index);
        }
        assert!(report.failover_recovery_vt.is_none(), "no faults, no failovers");
        assert!(report.latency_quantile(0.99).is_some());
    }

    #[test]
    fn crashed_replica_fails_over_without_losing_queries() {
        let (tk, trace) = small_workload();
        let baseline = single_engine_crcs(&tk, &trace);
        // Kill replica 0 of shard 0 (world rank 0) on its 3rd attempt —
        // mid-workload, after it has served traffic.
        let plan = FaultPlan::new().crash(0, 2);
        let mut router = Router::new(&tk, 2, 2, EngineConfig::default(), &plan);
        let report = router.run(&trace, &TierRunConfig::default());
        assert!(report.failures.is_empty(), "failover must absorb the crash: {:?}", report.failures);
        assert_eq!(report.completions.len(), trace.len(), "zero admitted queries lost");
        for c in &report.completions {
            assert_eq!(c.crc, baseline[&c.index]);
        }
        assert!(router.tier().registry().is_crashed(0), "registry names the dead rank");
        let recovery = report.failover_recovery_vt.expect("a failover happened");
        assert!(recovery > 0.0 && recovery.is_finite());
        assert!(report.completions.iter().any(|c| c.failovers > 0));
    }

    #[test]
    fn corrupted_payload_is_retried_never_returned() {
        let (tk, trace) = small_workload();
        let baseline = single_engine_crcs(&tk, &trace);
        // Corrupt one response bit on each replica's early ops.
        let plan = FaultPlan::new().corrupt(0, 1, 7, 33).corrupt(1, 0, 2, 5);
        let mut router = Router::new(&tk, 1, 2, EngineConfig::default(), &plan);
        let report = router.run(&trace, &TierRunConfig::default());
        assert!(report.failures.is_empty());
        assert_eq!(report.completions.len(), trace.len());
        for c in &report.completions {
            assert_eq!(c.crc, baseline[&c.index], "a wrong-CRC payload leaked through");
        }
        assert!(
            router.metrics().counter("serve/retry/integrity_failures") >= 1,
            "at least one corrupt response must have been caught"
        );
    }

    #[test]
    fn dead_shard_yields_typed_exhaustion_not_a_hang() {
        let (tk, trace) = small_workload();
        // Both replicas of shard 0 die immediately; shard 1 stays healthy.
        let plan = FaultPlan::new().crash(0, 0).crash(1, 0);
        let mut router = Router::new(&tk, 2, 2, EngineConfig::default(), &plan);
        let report = router.run(&trace, &TierRunConfig::default());
        assert_eq!(
            report.completions.len() + report.failures.len(),
            trace.len(),
            "every admitted query resolves"
        );
        assert!(!report.failures.is_empty(), "shard-0 queries must fail");
        for f in &report.failures {
            match &f.error {
                ServeError::ReplicasExhausted { shard: 0, dead, .. } => {
                    assert_eq!(dead, &vec![0, 1], "failure names the dead ranks");
                }
                other => panic!("expected ReplicasExhausted on shard 0, got {other}"),
            }
        }
    }

    #[test]
    fn endless_drops_trip_the_query_timeout_typed() {
        let (tk, trace) = small_workload();
        // One replica, every attempt dropped: retries back off until the
        // per-query budget runs out — a typed Timeout, never a hang.
        let plan = FaultPlan::new().flaky(0, 0..100_000, 1);
        let mut router = Router::new(&tk, 1, 1, EngineConfig::default(), &plan);
        let rc = TierRunConfig {
            retry: RetryPolicy {
                max_attempts: 1000,
                backoff_base: 0.04,
                backoff_cap: 0.04,
                timeout: 0.05,
            },
            ..TierRunConfig::default()
        };
        let report = router.run(&trace, &rc);
        assert_eq!(report.completions.len() + report.failures.len(), trace.len());
        assert!(report.completions.is_empty(), "nothing can be served");
        assert!(
            report
                .failures
                .iter()
                .all(|f| matches!(f.error, ServeError::Timeout { .. })),
            "endless drops must surface as per-query timeouts"
        );
    }

    #[test]
    fn preference_order_is_deterministic_and_complete() {
        let (tk, _) = small_workload();
        let router = Router::new(&tk, 2, 3, EngineConfig::default(), &FaultPlan::none());
        for shard in 0..2 {
            let a = router.preference(shard, 0x1234_5678);
            let b = router.preference(shard, 0x1234_5678);
            assert_eq!(a, b, "same key, same order");
            let mut sorted = a.clone();
            sorted.sort_unstable();
            let expect: Vec<usize> = (0..3).map(|r| router.tier().rank(shard, r)).collect();
            assert_eq!(sorted, expect, "every replica appears exactly once");
        }
        // Different keys spread across different primaries somewhere.
        let spread: std::collections::BTreeSet<usize> =
            (0u64..64).map(|k| router.preference(0, mix64(k))[0]).collect();
        assert!(spread.len() > 1, "ring must not map every key to one replica");
    }
}
