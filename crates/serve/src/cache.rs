//! Deterministic LRU cache of partial contractions.
//!
//! Values are mode-0 partials `G ×_0 U_0[bstart..bend]` for *block-aligned*
//! contiguous row ranges: queries whose mode-0 selections fall inside the
//! same aligned block share one entry, and a query's exact rows are cut out
//! of the cached partial by a pure-copy gather (bit-preserving, see
//! `tucker_tensor::slice`). Keys order and eviction are fully deterministic
//! — a `BTreeMap` plus a monotone use-counter, least-recently-used evicted
//! first — so cache behavior (and therefore every benchmark number derived
//! from it) is reproducible run to run.

use std::collections::BTreeMap;
use std::sync::Arc;
use tucker_tensor::Tensor;

/// Cache key: a contracted mode and the aligned row range `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartialKey {
    /// Contracted mode (currently always 0).
    pub mode: usize,
    /// First factor row of the cached partial.
    pub start: usize,
    /// One past the last factor row.
    pub end: usize,
}

struct Entry<T> {
    value: Arc<Tensor<T>>,
    bytes: usize,
    last_use: u64,
}

/// Running totals, exported into the metrics registry by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under budget.
    pub evictions: u64,
    /// Payload bytes currently resident.
    pub bytes: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, or `None` before any lookup (avoids a
    /// misleading 0.0 — "no data" and "all misses" are different states).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Byte-budgeted LRU of partial contraction tensors.
pub struct ContractionCache<T> {
    map: BTreeMap<PartialKey, Entry<T>>,
    budget: usize,
    tick: u64,
    stats: CacheStats,
}

impl<T> ContractionCache<T> {
    /// Cache with the given payload-byte budget (0 disables storage; every
    /// lookup misses and inserts are dropped).
    pub fn new(budget: usize) -> Self {
        ContractionCache { map: BTreeMap::new(), budget, tick: 0, stats: CacheStats::default() }
    }

    /// Look up a partial, refreshing its recency on hit.
    pub fn get(&mut self, key: PartialKey) -> Option<Arc<Tensor<T>>> {
        self.tick += 1;
        match self.map.get_mut(&key) {
            Some(e) => {
                e.last_use = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a partial of the given payload size, evicting LRU entries
    /// until the budget holds. An entry larger than the whole budget is not
    /// stored at all.
    pub fn insert(&mut self, key: PartialKey, value: Arc<Tensor<T>>, bytes: usize) {
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(key, Entry { value, bytes, last_use: self.tick }) {
            self.stats.bytes -= old.bytes;
        }
        self.stats.bytes += bytes;
        while self.stats.bytes > self.budget {
            // Deterministic LRU victim: smallest use-counter; BTreeMap order
            // breaks the (impossible) tie stably.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k)
                .expect("over budget implies non-empty");
            let gone = self.map.remove(&victim).expect("victim exists");
            self.stats.bytes -= gone.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Totals so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_of(bytes: usize) -> Arc<Tensor<f64>> {
        Arc::new(Tensor::zeros(&[bytes / 8]))
    }

    fn key(start: usize, end: usize) -> PartialKey {
        PartialKey { mode: 0, start, end }
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = ContractionCache::new(1024);
        assert!(c.get(key(0, 32)).is_none());
        c.insert(key(0, 32), tensor_of(256), 256);
        assert!(c.get(key(0, 32)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().bytes, 256);
    }

    #[test]
    fn hit_rate_is_none_until_first_lookup() {
        let mut c = ContractionCache::new(1024);
        assert_eq!(c.stats().hit_rate(), None);
        assert!(c.get(key(0, 32)).is_none());
        assert_eq!(c.stats().hit_rate(), Some(0.0));
        c.insert(key(0, 32), tensor_of(256), 256);
        assert!(c.get(key(0, 32)).is_some());
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ContractionCache::new(512);
        c.insert(key(0, 32), tensor_of(256), 256);
        c.insert(key(32, 64), tensor_of(256), 256);
        // Touch the first so the second becomes LRU.
        assert!(c.get(key(0, 32)).is_some());
        c.insert(key(64, 96), tensor_of(256), 256);
        assert!(c.get(key(0, 32)).is_some(), "recently used survives");
        assert!(c.get(key(32, 64)).is_none(), "LRU entry evicted");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().bytes, 512);
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let mut c = ContractionCache::new(100);
        c.insert(key(0, 32), tensor_of(256), 256);
        assert_eq!(c.len(), 0);
        assert!(c.get(key(0, 32)).is_none());
    }

    #[test]
    fn zero_budget_disables_storage() {
        let mut c = ContractionCache::new(0);
        c.insert(key(0, 32), tensor_of(8), 8);
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let mut c = ContractionCache::new(1024);
        c.insert(key(0, 32), tensor_of(256), 256);
        c.insert(key(0, 32), tensor_of(512), 512);
        assert_eq!(c.stats().bytes, 512);
        assert_eq!(c.len(), 1);
    }
}
