//! Typed errors for the serving layer.

use std::fmt;
use tucker_core::tucker_io::TuckerIoError;

/// Everything that can go wrong answering a reconstruction query.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was full.
    /// Carries the observed occupancy so clients can back off proportionally.
    Overloaded {
        /// Requests queued at rejection time.
        queued: usize,
        /// Queue capacity.
        capacity: usize,
    },
    /// Admission control rejected the request: its tenant already has its
    /// full quota of requests queued. Distinct from [`ServeError::Overloaded`]
    /// so a noisy neighbor sees *its* limit, not a full-cluster signal.
    QuotaExceeded {
        /// The tenant over its limit.
        tenant: usize,
        /// Requests this tenant had queued at rejection time.
        queued: usize,
        /// The per-tenant queue quota.
        quota: usize,
    },
    /// The executor is draining for shutdown and accepts no new work.
    Draining,
    /// A replicated query exhausted its retry budget: every attempt on the
    /// shard's replicas failed (crashed, dropped, or failed integrity).
    ReplicasExhausted {
        /// The shard whose replicas were exhausted.
        shard: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Replicas of the shard known dead when the query gave up.
        dead: Vec<usize>,
    },
    /// A replicated query ran past its per-query timeout while failing over.
    Timeout {
        /// The shard being retried when time ran out.
        shard: usize,
        /// Virtual seconds elapsed since dispatch.
        elapsed: f64,
        /// The configured per-query budget.
        budget: f64,
    },
    /// The query is malformed or out of bounds for the store's dimensions.
    BadQuery(String),
    /// The underlying store failed to open or verify (includes checksum
    /// mismatches naming the damaged section).
    Io(TuckerIoError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "overloaded: {queued}/{capacity} requests queued, admission denied")
            }
            ServeError::QuotaExceeded { tenant, queued, quota } => {
                write!(f, "tenant {tenant} over quota: {queued}/{quota} requests queued")
            }
            ServeError::Draining => write!(f, "executor is draining; no new requests accepted"),
            ServeError::ReplicasExhausted { shard, attempts, dead } => {
                write!(
                    f,
                    "shard {shard}: all replicas exhausted after {attempts} attempts \
                     (dead replicas: {dead:?})"
                )
            }
            ServeError::Timeout { shard, elapsed, budget } => {
                write!(
                    f,
                    "query timed out failing over on shard {shard}: \
                     {elapsed:.6}s elapsed of {budget:.6}s budget"
                )
            }
            ServeError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServeError::Io(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TuckerIoError> for ServeError {
    fn from(e: TuckerIoError) -> Self {
        ServeError::Io(e)
    }
}
