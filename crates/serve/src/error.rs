//! Typed errors for the serving layer.

use std::fmt;
use tucker_core::tucker_io::TuckerIoError;

/// Everything that can go wrong answering a reconstruction query.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded queue was full.
    /// Carries the observed occupancy so clients can back off proportionally.
    Overloaded {
        /// Requests queued at rejection time.
        queued: usize,
        /// Queue capacity.
        capacity: usize,
    },
    /// The executor is draining for shutdown and accepts no new work.
    Draining,
    /// The query is malformed or out of bounds for the store's dimensions.
    BadQuery(String),
    /// The underlying store failed to open or verify (includes checksum
    /// mismatches naming the damaged section).
    Io(TuckerIoError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => {
                write!(f, "overloaded: {queued}/{capacity} requests queued, admission denied")
            }
            ServeError::Draining => write!(f, "executor is draining; no new requests accepted"),
            ServeError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            ServeError::Io(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TuckerIoError> for ServeError {
    fn from(e: TuckerIoError) -> Self {
        ServeError::Io(e)
    }
}
