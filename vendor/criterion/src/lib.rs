//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the workspace's benches use
//! (`criterion_group!` with `name/config/targets`, `criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`) as a simple wall-clock
//! harness: warm up, then run timed batches and report the per-iteration
//! mean and min. No statistics, plots, or baseline comparisons.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up running time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// A named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), c: self }
    }

    /// Run one benchmark directly on the harness. Accepts `&str` or
    /// `String` ids, as real criterion does via `Into<BenchmarkId>`.
    pub fn bench_function<I, F>(&mut self, name: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = name.into();
        run_benchmark(self, &label, f);
        self
    }
}

/// Handle for benchmarks registered under a common group name.
pub struct BenchmarkGroup<'a> {
    name: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group. Accepts `&str` or `String` ids.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(self.c, &label, f);
        self
    }

    /// End the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for this sample's iteration count, recording total elapsed
    /// time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Warm up while estimating a per-iteration time.
    let warm_start = Instant::now();
    let mut iters_done: u64 = 0;
    while warm_start.elapsed() < c.warm_up_time {
        run_once(&mut f, 1);
        iters_done += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

    // Pick a per-sample iteration count that fits sample_size samples into
    // the measurement budget.
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let d = run_once(&mut f, iters);
        samples.push(d.as_secs_f64() / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::MAX, f64::min);
    println!("{label:<48} mean {:>12}  min {:>12}", fmt_time(mean), fmt_time(min));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Group benchmark targets under a callable name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c = $cfg;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = quick();
        let mut g = c.benchmark_group("demo");
        let mut count = 0u64;
        g.bench_function("increment", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        g.finish();
        assert!(count > 0);
    }

    criterion_group!(
        name = test_group;
        config = crate::tests::quick();
        targets = target_a
    );

    fn target_a(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macro_group_is_callable() {
        test_group();
    }
}
