//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`/`prop_filter`,
//! range and tuple strategies, [`arbitrary::any`], and
//! [`collection::vec`] — over a deterministic per-test RNG.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated values via the normal assert message), and the generation
//! streams differ. Each test function derives its seed from its own name, so
//! failures are reproducible run to run.

pub mod rng {
    //! Deterministic test RNG (SplitMix64).

    /// Generator handed to [`crate::strategy::Strategy::generate`].
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed from a test name (FNV-1a), so each test gets its own
        /// reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi]` (inclusive).
        pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            let span = hi - lo;
            if span == u64::MAX {
                return self.next_u64();
            }
            lo + self.next_u64() % (span + 1)
        }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// Per-test-block configuration (subset: case count).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::rng::TestRng;

    /// How many candidates a filter tries before giving up.
    const FILTER_MAX_TRIES: usize = 10_000;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `pred` holds; `whence` names the
        /// constraint in the give-up panic message.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence: whence.into(), pred }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_MAX_TRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "proptest filter '{}' rejected {FILTER_MAX_TRIES} candidates in a row",
                self.whence
            );
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.uniform_u64(self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.uniform_u64(*self.start() as u64, *self.end() as u64) as $t
                }
            }
        )*};
    }
    int_range_strategies!(usize, u64, u32, u16, u8);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! [`any`] and the [`Arbitrary`] trait.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// That strategy.
        type Strategy: Strategy<Value = Self>;
        /// Construct it.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy over all bit patterns of an integer type.
    pub struct AnyBits<T>(PhantomData<T>);

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Strategy for AnyBits<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyBits<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyBits(PhantomData)
                }
            }
        )*};
    }
    arbitrary_ints!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for AnyBits<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBits<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyBits(PhantomData)
        }
    }

    /// The canonical strategy for `A` (e.g. `any::<u64>()`).
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies (subset: [`vec`]).

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Things usable as a `vec` length specification: an exact length or a
    /// range of lengths.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec-size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.uniform_u64(self.min as u64, self.max as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test (forwards to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let ($($pat,)+) = ($(($strat).generate(&mut __rng),)+);
                    // Run the body inside a Result-returning closure so
                    // `return Ok(())` early-exits a case, like real proptest.
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(__msg) = __outcome {
                        panic!("proptest case {} failed: {}", __case, __msg);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_any((a, b) in (0usize..5, any::<u64>()), flip in any::<bool>()) {
            prop_assert!(a < 5);
            let _ = b;
            let _ = flip;
        }

        #[test]
        fn mapped_strategy_is_even(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn filter_holds(v in crate::collection::vec(1usize..6, 2..5)
            .prop_filter("product small", |v| v.iter().product::<usize>() <= 20))
        {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().product::<usize>() <= 20);
        }
    }

    #[test]
    fn vec_exact_len() {
        let s = crate::collection::vec(0usize..3, 4usize);
        let mut rng = crate::rng::TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng).len(), 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::rng::TestRng::from_name("t");
        let mut b = crate::rng::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
