//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::sample`] over
//! [`distributions::Distribution`] implementors. The generator is SplitMix64 —
//! deterministic and statistically fine for test-data generation, but **not**
//! stream-compatible with upstream `rand` and **not** cryptographically
//! secure.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be seeded from a single `u64`.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    //! Sampling distributions (subset: [`Standard`] uniform values).

    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution of a type: floats in `[0, 1)`,
    /// integers over their full range.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one sample from `distr`.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Draw a value from the type's [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        self.sample(distributions::Standard)
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(!range.is_empty(), "gen_range: empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators (subset: [`StdRng`]).

    /// SplitMix64: the workspace's deterministic default generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        let xc: u64 = c.gen();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let y: f32 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }
}
