//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! provides the parallel-iterator API subset the workspace uses:
//! `par_chunks(_mut)`, `into_par_iter` on ranges, and the adapter chain
//! `enumerate`/`zip`/`map`/`step_by` ending in `for_each`/`collect`/`reduce`.
//!
//! Execution model: `for_each` fans work out over scoped `std::thread`
//! workers pulling items from a shared queue — the embarrassingly parallel
//! pattern the workspace's GEMM/SYRK/TTM kernels use. Everything that folds
//! to a single value (`collect`, `reduce`, `sum`) runs sequentially, which
//! keeps floating-point reduction order deterministic run to run (a property
//! the real rayon does not guarantee and this reproduction prefers).

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

thread_local! {
    /// Per-thread worker budget, settable by an embedding runtime (the MPI
    /// simulator partitions cores across its rank threads through this).
    static THREAD_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// `RAYON_NUM_THREADS`, parsed once (mirrors the real rayon's global-pool
/// sizing env var). `0` or unparsable values mean "no limit".
fn env_num_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Cap the number of worker threads `for_each` fans out to *from the calling
/// thread* (and from the workers it spawns). `None` removes the cap. Unlike
/// real rayon's global pool this stub spawns workers per call, so the cap is
/// thread-local: each simulated MPI rank can hold its own share of the cores.
pub fn set_current_thread_limit(limit: Option<usize>) {
    THREAD_LIMIT.with(|l| l.set(limit.map(|n| n.max(1))));
}

/// The thread-local worker cap, if one is set.
pub fn current_thread_limit() -> Option<usize> {
    THREAD_LIMIT.with(|l| l.get())
}

/// Number of worker threads the `for_each` path fans out to: the
/// thread-local limit if set, else `RAYON_NUM_THREADS`, else all cores.
pub fn current_num_threads() -> usize {
    if let Some(n) = current_thread_limit() {
        return n;
    }
    if let Some(n) = env_num_threads() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A "parallel" iterator: a thin wrapper over a sequential iterator whose
/// `for_each` executes on multiple threads.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Keep every `step`-th item.
    pub fn step_by(self, step: usize) -> ParIter<std::iter::StepBy<I>> {
        ParIter(self.0.step_by(step))
    }

    /// Zip with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Transform each item.
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Run `f` on every item, fanned out over worker threads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Sync,
    {
        let items: Vec<I::Item> = self.0.collect();
        let workers = current_num_threads().min(items.len());
        if workers <= 1 {
            for item in items {
                f(item);
            }
            return;
        }
        let queue = Mutex::new(items.into_iter());
        let (fr, qr) = (&f, &queue);
        let limit = current_thread_limit();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || {
                    // Workers inherit the spawner's budget so nested parallel
                    // calls cannot oversubscribe a partitioned rank.
                    set_current_thread_limit(limit.map(|_| 1));
                    loop {
                        let next = qr.lock().unwrap().next();
                        match next {
                            Some(item) => fr(item),
                            None => break,
                        }
                    }
                });
            }
        });
    }

    /// Collect into a container (sequential).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Fold all items with `op`, starting from `identity()` (sequential,
    /// deterministic order).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum all items (sequential, deterministic order).
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Non-overlapping chunks of at most `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Non-overlapping mutable chunks of at most `size` items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// Conversion into a [`ParIter`].
pub trait IntoParallelIterator {
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Wrap as a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = std::ops::Range<usize>;
    type Item = usize;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    //! Mirror of `rayon::iter` for code that names the module path.
    pub use crate::{IntoParallelIterator, ParIter};
}

pub mod slice {
    //! Mirror of `rayon::slice`.
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_for_each_touches_everything() {
        let mut data = vec![0u64; 10_000];
        data.par_chunks_mut(97).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[97], 2);
    }

    #[test]
    fn zip_pairs_in_order() {
        let src: Vec<usize> = (0..1000).collect();
        let mut dst = vec![0usize; 1000];
        dst.par_chunks_mut(10).zip(src.par_chunks(10)).for_each(|(d, s)| {
            for (a, b) in d.iter_mut().zip(s) {
                *a = b * 2;
            }
        });
        assert_eq!(dst[499], 998);
    }

    #[test]
    fn range_map_collect_and_reduce() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);
        let total = (0..100)
            .into_par_iter()
            .map(|i| i as f64)
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(total, 4950.0);
    }

    #[test]
    fn step_by_strides() {
        let starts: Vec<usize> = (0..10).into_par_iter().step_by(3).collect();
        assert_eq!(starts, vec![0, 3, 6, 9]);
    }

    #[test]
    fn thread_limit_is_thread_local() {
        crate::set_current_thread_limit(Some(2));
        assert_eq!(crate::current_num_threads(), 2);
        let other = std::thread::spawn(crate::current_thread_limit).join().unwrap();
        assert_eq!(other, None);
        crate::set_current_thread_limit(None);
        assert!(crate::current_num_threads() >= 1);
    }
}
