//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides [`StandardNormal`] — the only distribution this workspace uses —
//! implemented with the Box-Muller transform over the vendored `rand`
//! generator. Sample streams are deterministic per seed but not identical to
//! upstream `rand_distr` (which uses the ziggurat method).

pub use rand::distributions::Distribution;
use rand::RngCore;

/// The standard normal distribution `N(0, 1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

fn unit_open(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // (0, 1]: avoids ln(0) below.
    ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
}

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1 = unit_open(rng);
        let u2 = unit_open(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let x: f64 = StandardNormal.sample(rng);
        x as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn moments_are_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x: f64 = rng.sample(StandardNormal);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn values_are_finite() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.sample(StandardNormal);
            assert!(x.is_finite());
        }
    }
}
