//! Fixed-rank compression of a video-like tensor (the paper's §4.5.3
//! experiment): when the target error is loose, the cheapest variant wins.
//!
//! ```sh
//! cargo run --release --example video_compression
//! ```

use tucker_rs::core::{sthosvd_with_info, ModeOrder, SthosvdConfig, SvdMethod};
use tucker_rs::data::video_surrogate;

fn main() {
    // height x width x color x frames, scaled down from 1080x1920x3x2200.
    let dims = [36usize, 64, 3, 60];
    let ranks = vec![7usize, 7, 3, 6]; // same fractions as the paper's 200/1080 etc.
    println!("video-like tensor {dims:?} -> fixed ranks {ranks:?}\n");
    let x = video_surrogate::<f64>(&dims, 11);

    let cfg = SthosvdConfig::with_ranks(ranks).method(SvdMethod::Gram).order(ModeOrder::Backward);
    let out = sthosvd_with_info(&x, &cfg).expect("ST-HOSVD failed");

    println!("compression ratio : {:.0}x", out.tucker.compression_ratio());
    println!("relative error    : {:.3}", out.tucker.relative_error(&x));
    println!("(the paper reports 570x at error 0.213 for the full-size video —");
    println!(" lossy, but sufficient for its frame-classification task)\n");

    // Show why tight tolerances buy nothing here: the spectra flatten after
    // a fast initial drop.
    for (n, s) in out.singular_values.iter().enumerate() {
        let s0 = s[0];
        let head = s[(s.len() / 10).max(1).min(s.len() - 1)] / s0;
        let tail = s[s.len() - 1] / s0;
        println!(
            "mode {n}: sigma drops to {head:.1e} within the first 10% of indices, then only to {tail:.1e} at the end"
        );
    }
}
