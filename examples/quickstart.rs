//! Quickstart: compress a combustion-like tensor with ST-HOSVD.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tucker_rs::core::{sthosvd_with_info, SthosvdConfig, SvdMethod};
use tucker_rs::data::hcci_surrogate;

fn main() {
    // A small tensor shaped like the paper's HCCI combustion dataset
    // (two spatial modes, a variable mode, a time mode) with realistically
    // decaying per-mode spectra.
    let dims = [30usize, 30, 16, 30];
    println!("generating a {dims:?} combustion-like tensor ...");
    let x = hcci_surrogate::<f64>(&dims, 42);

    // Compress to relative error 1e-3 using the numerically accurate QR-SVD.
    let cfg = SthosvdConfig::with_tolerance(1e-3).method(SvdMethod::Qr);
    let out = sthosvd_with_info(&x, &cfg).expect("ST-HOSVD failed");

    let tk = &out.tucker;
    println!("multilinear ranks : {:?}", tk.ranks());
    println!("compression ratio : {:.1}x", tk.compression_ratio());
    println!("estimated error   : {:.3e}", out.estimated_error);
    println!("exact error       : {:.3e}", tk.relative_error(&x));
    assert!(tk.relative_error(&x) <= 1e-3);

    // The factors are orthonormal bases for each mode.
    for (n, u) in tk.factors.iter().enumerate() {
        println!(
            "factor U_{n}: {}x{} (orthonormality error {:.1e})",
            u.rows(),
            u.cols(),
            u.orthonormality_error()
        );
    }
}
