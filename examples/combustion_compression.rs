//! Pick the right (algorithm × precision) variant for a target accuracy —
//! a miniature of the paper's Table 2 experiment on a combustion dataset.
//!
//! ```sh
//! cargo run --release --example combustion_compression
//! ```
//!
//! The rule of thumb the paper derives (§5):
//! * ε ≥ 1e-3   → Gram single (fastest, accurate enough)
//! * 1e-7 < ε < 1e-3 → QR single (Gram single's values are noise below √ε_s)
//! * ε ≈ 1e-7..1e-8  → Gram double
//! * ε ≤ 1e-8   → QR double only

use tucker_rs::core::{sthosvd, SthosvdConfig, SvdMethod};
use tucker_rs::data::hcci_surrogate;
use tucker_rs::linalg::Scalar;
use tucker_rs::tensor::Tensor;

fn compress<T: Scalar>(x64: &Tensor<f64>, method: SvdMethod, eps: f64) -> (f64, f64) {
    let x: Tensor<T> = x64.cast();
    let cfg = SthosvdConfig::with_tolerance(eps).method(method);
    let tk = sthosvd(&x, &cfg).expect("ST-HOSVD failed");
    // Evaluate the reconstruction against the f64 reference.
    let recon: Tensor<f64> = tk.reconstruct().cast();
    (tk.compression_ratio(), x64.relative_error_to(&recon))
}

fn main() {
    let dims = [36usize, 36, 16, 36];
    println!("HCCI-like tensor {dims:?}; comparing all four variants\n");
    let x = hcci_surrogate::<f64>(&dims, 7);

    println!(
        "{:>9}  {:>12}  {:>12}  {:>10}  {:>8}",
        "tolerance", "variant", "compression", "error", "meets ε?"
    );
    for eps in [1e-2, 1e-4, 1e-6] {
        for (label, method, single) in [
            ("Gram single", SvdMethod::Gram, true),
            ("QR single", SvdMethod::Qr, true),
            ("Gram double", SvdMethod::Gram, false),
            ("QR double", SvdMethod::Qr, false),
        ] {
            let (comp, err) = if single {
                compress::<f32>(&x, method, eps)
            } else {
                compress::<f64>(&x, method, eps)
            };
            println!(
                "{eps:>9.0e}  {label:>12}  {comp:>11.1}x  {err:>10.2e}  {:>8}",
                if err <= eps * 1.6 { "yes" } else { "NO" }
            );
        }
        println!();
    }
    println!("note how Gram single stops compressing below ε = √ε_s ≈ 3e-4,");
    println!("and QR single below ε = ε_s ≈ 1e-7 — while costing half of the");
    println!("corresponding double-precision variant.");
}
