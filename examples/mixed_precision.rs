//! Mixed-precision Gram-SVD (the paper's §5 future work) in action:
//! single-precision data, double-precision Gram accumulation.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```

use tucker_rs::core::{sthosvd, SthosvdConfig, SvdMethod};
use tucker_rs::data::hcci_surrogate;
use tucker_rs::tensor::Tensor;

fn main() {
    let dims = [24usize, 24, 12, 24];
    let x64 = hcci_surrogate::<f64>(&dims, 3);
    let x32: Tensor<f32> = x64.cast();
    let eps = 1e-4; // below Gram-single's sqrt(eps_s) floor, above eps_s

    println!("HCCI-like {dims:?} in single precision, tolerance {eps:.0e}\n");
    for (label, method) in [
        ("Gram single (plain)", SvdMethod::Gram),
        ("QR single", SvdMethod::Qr),
        ("Gram mixed (f32 data, f64 Gram)", SvdMethod::GramMixed),
    ] {
        let cfg = SthosvdConfig::with_tolerance(eps).method(method);
        let tk = sthosvd(&x32, &cfg).expect("sthosvd failed");
        let recon: Tensor<f64> = tk.reconstruct().cast();
        let err = x64.relative_error_to(&recon);
        println!(
            "{label:32}  ranks {:?}  compression {:7.1}x  error {err:.2e}",
            tk.ranks(),
            tk.compression_ratio()
        );
    }
    println!("\nplain Gram-single cannot see below sqrt(eps_f32) ~ 3e-4, so it");
    println!("barely compresses; accumulating the Gram matrix in f64 removes the");
    println!("squaring loss and recovers QR-single's result — at Gram's structure");
    println!("(one syrk pass + small EVD, no LQ), confirming the paper's conjecture.");
}
