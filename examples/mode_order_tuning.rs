//! Mode-order tuning with the §3.5 cost model (paper §4.2.3: "if all
//! dimensions and reduced ranks are known ... the modes can be ordered to
//! minimize computation").
//!
//! ```sh
//! cargo run --release --example mode_order_tuning
//! ```

use tucker_rs::core::model::{predict, ModelConfig};
use tucker_rs::core::{optimize_mode_order, ModeOrder, OrderSearch, SvdMethod};
use tucker_rs::mpisim::CostModel;

fn main() {
    // An anisotropic problem: one long mode that truncates hard, three that
    // barely truncate.
    let dims = [512usize, 48, 48, 48];
    let ranks = [4usize, 24, 24, 24];
    let grid = [8usize, 2, 1, 1];
    println!("dims {dims:?} -> ranks {ranks:?} on grid {grid:?}, QR-SVD double\n");

    let eval = |order: Vec<usize>| {
        predict(&ModelConfig {
            dims: dims.to_vec(),
            ranks: ranks.to_vec(),
            grid: grid.to_vec(),
            order,
            method: SvdMethod::Qr,
            bytes: 8,
            cost: CostModel::andes(),
        })
        .total
    };

    println!("forward  order [0,1,2,3]: modeled {:.3}s", eval(vec![0, 1, 2, 3]));
    println!("backward order [3,2,1,0]: modeled {:.3}s", eval(vec![3, 2, 1, 0]));

    for search in [OrderSearch::Greedy, OrderSearch::Exhaustive] {
        let (order, t) = optimize_mode_order(
            &dims,
            &ranks,
            &grid,
            SvdMethod::Qr,
            8,
            CostModel::andes(),
            search,
        );
        let ModeOrder::Custom(o) = &order else { unreachable!() };
        println!("{search:?} search -> order {o:?}: modeled {t:.3}s");
    }
    println!("\nthe paper only compares forward/backward because its ranks are");
    println!("tolerance-driven (unknown a priori); with known ranks the cost");
    println!("model finds the cheaper orders automatically.");
}
