//! Distributed ST-HOSVD on the simulated MPI machine: strong scaling and
//! time breakdown, miniature of the paper's Fig. 4.
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use tucker_rs::core::{sthosvd_parallel, ModeOrder, SthosvdConfig, SvdMethod};
use tucker_rs::data::hash_noise;
use tucker_rs::dtensor::{DistTensor, ProcessorGrid};
use tucker_rs::mpisim::{CostModel, Simulator};

fn main() {
    let d = 24usize;
    let dims = [d, d, d, d];
    let ranks = vec![3usize; 4];
    println!("random {dims:?} tensor -> ranks {ranks:?}, QR-SVD double precision\n");

    let mut t1 = None;
    for (p, grid) in [(1usize, [1usize, 1, 1, 1]), (2, [2, 1, 1, 1]), (4, [2, 2, 1, 1]), (8, [4, 2, 1, 1])] {
        let cfg = SthosvdConfig::with_ranks(ranks.clone())
            .method(SvdMethod::Qr)
            .order(ModeOrder::Backward);
        let sim = Simulator::new(p).with_cost(CostModel::andes());
        let out = sim.run(|ctx| {
            // Each rank generates only its own block — no global tensor.
            let dt = DistTensor::from_fn(&dims, &ProcessorGrid::new(&grid), ctx.rank(), |g| {
                let lin = g[0] + d * (g[1] + d * (g[2] + d * g[3]));
                hash_noise(3, lin)
            });
            sthosvd_parallel(ctx, &dt, &cfg).expect("sthosvd failed");
        });
        let b = out.breakdown();
        let t = b.modeled_time;
        let t1v = *t1.get_or_insert(t);
        let phase = |k: &str| b.phases.get(k).map(|p| p.modeled).unwrap_or(0.0);
        println!(
            "P={p}: modeled {t:.4}s  speedup {:.2}x  (LQ {:.4}s  SVD {:.4}s  TTM {:.4}s, {} msgs)",
            t1v / t,
            phase("LQ"),
            phase("SVD"),
            phase("TTM"),
            b.total_msgs
        );
    }
    println!("\nthe modeled clock uses the paper's alpha-beta-gamma machine model");
    println!("(CostModel::andes()); on a laptop the simulated ranks are threads,");
    println!("so wall time does not scale — the virtual clock does.");
}
