//! Gram-SVD vs QR-SVD accuracy on a graded matrix — a miniature of the
//! paper's Fig. 1 experiment.
//!
//! ```sh
//! cargo run --release --example svd_accuracy
//! ```

use tucker_rs::data::geometric_profile;
use tucker_rs::linalg::{gram_svd, matrix_with_singular_values, qr_svd, Matrix, Scalar};

fn series<T: Scalar>(a64: &Matrix<f64>, qr: bool) -> Vec<f64> {
    let a = Matrix::<T>::from_fn(a64.rows(), a64.cols(), |i, j| T::from_f64(a64[(i, j)]));
    let (_, s) = if qr { qr_svd(a.as_ref()).unwrap() } else { gram_svd(a.as_ref()).unwrap() };
    s.iter().map(|v| v.to_f64()).collect()
}

fn main() {
    // 40x40 matrix, singular values decaying geometrically 1 .. 1e-12.
    let truth = geometric_profile(40, 0.0, -12.0);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let a = matrix_with_singular_values::<f64, _>(&truth, 40, &mut rng);

    let columns = [
        ("QR double", series::<f64>(&a, true)),
        ("QR single", series::<f32>(&a, true)),
        ("Gram double", series::<f64>(&a, false)),
        ("Gram single", series::<f32>(&a, false)),
    ];

    println!("{:>3} {:>10} {:>11} {:>11} {:>11} {:>11}", "i", "true", "QR-d", "QR-s", "Gram-d", "Gram-s");
    for i in (0..40).step_by(3) {
        print!("{i:>3} {:>10.1e}", truth[i]);
        for (_, s) in &columns {
            print!(" {:>11.2e}", s[i]);
        }
        println!();
    }
    println!();
    for (name, s) in &columns {
        let lost = truth.iter().zip(s).find(|(t, g)| (*g - **t).abs() / **t > 1.0);
        match lost {
            Some((t, _)) => println!("{name:>11}: loses accuracy near sigma ~ {t:.1e}"),
            None => println!("{name:>11}: accurate over the full range"),
        }
    }
    println!("\nexpected floors: Gram-s ~ sqrt(eps_s) = 3e-4, QR-s ~ eps_s = 1e-7,");
    println!("Gram-d ~ sqrt(eps_d) = 1e-8, QR-d accurate to 1e-12 here.");
}
